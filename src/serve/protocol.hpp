/// \file protocol.hpp
/// \brief The decycle_serve wire protocol: length-prefixed frames and a
/// typed request grammar with loud, alternative-naming errors.
///
/// Framing. A frame is `<decimal byte length> <payload>\n` — the ASCII
/// length of the payload, one space, the payload bytes, one newline. The
/// prefix makes the stream self-delimiting (payloads may not contain
/// newlines today, but the framing never has to change when they do), and
/// keeping it ASCII keeps `nc -U` sessions and repro files human-readable.
/// FrameReader is the incremental decoder both the socket daemon and the
/// fuzz tests drive: feed arbitrary byte slices, pop complete payloads,
/// and get a typed error (not a crash, not a hang) on garbage.
///
/// Requests. A payload is `<verb> key=value key=value …`, in the
/// ScenarioSpec::parse tradition: unknown verbs, unknown keys, unparsable
/// values, unknown algorithms/models, capability-violating (algo, k,
/// model) combinations, and oversized edge batches are each rejected with
/// an error that names the offender and the accepted alternatives, so a
/// typo'd client never silently runs the default workload.
///
/// Replies reuse the framing. The first token classifies the outcome:
///   `OK <verb> …`           success, verb-specific fields follow
///   `REJECTED overload …`   admission control shed the request (never an
///                           error — the client should back off and retry)
///   `ERROR <code> <detail>` typed failure; <code> is stable for programs,
///                           <detail> is for humans and names alternatives.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "congest/comm_model.hpp"
#include "core/detector.hpp"
#include "incremental/stream.hpp"

namespace decycle::serve {

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Hard ceiling a reader enforces before trusting a length prefix. Large
/// enough for a max-size insert batch reply, small enough that a garbled
/// prefix cannot make the reader buffer gigabytes.
inline constexpr std::size_t kMaxFrameBytes = 1 << 22;  // 4 MiB

/// Encodes one frame: "<len> <payload>\n".
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame decoder. Not thread-safe; one per connection.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame_bytes = kMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  enum class Status : std::uint8_t {
    kFrame,     ///< a complete payload was produced
    kNeedMore,  ///< the buffered bytes end mid-frame; feed more
    kError,     ///< the stream is garbled; error() explains, stream is dead
  };

  /// Appends raw bytes from the transport.
  void feed(std::string_view bytes);

  /// Pops the next complete payload into \p payload. After kError the
  /// reader refuses further frames (a garbled length prefix desynchronizes
  /// the stream for good — resynchronizing would risk executing a payload
  /// fragment as a request).
  [[nodiscard]] Status next(std::string& payload);

  /// Human-readable reason once next() returned kError.
  [[nodiscard]] const std::string& error() const noexcept { return error_; }

  /// True when EOF at this point would be mid-frame (a truncated stream).
  [[nodiscard]] bool mid_frame() const noexcept { return !buffer_.empty(); }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::string error_;
  bool dead_ = false;
};

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Stable machine-readable error codes (the second reply token).
enum class ErrorCode : std::uint8_t {
  kBadFrame,        ///< framing violation (bad prefix, oversize, truncation)
  kBadRequest,      ///< unknown verb/key or unparsable value
  kUnknownTenant,   ///< tenant name not in the store
  kTenantExists,    ///< create on a name that is already a tenant
  kCapability,      ///< (algo, k, model) outside the detector's capabilities
  kOversizedBatch,  ///< insert batch exceeds the server's edge cap
  kBadInsert,       ///< self-loop / out-of-range endpoint in an edge batch
  kShuttingDown,    ///< server is draining; no new work admitted
  kInternal,        ///< handler threw (bug; detail carries the what())
};

[[nodiscard]] std::string_view error_code_name(ErrorCode code) noexcept;

/// Thrown by parse_request (and server-side validation): a typed error the
/// server formats into an `ERROR <code> <detail>` reply.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(ErrorCode code, const std::string& detail)
      : std::runtime_error(detail), code_(code) {}
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

enum class Verb : std::uint8_t {
  kCreate,      ///< create tenant=<t> n=<n> [family=<f> k=<k> seed=<s>]
  kInsert,      ///< insert tenant=<t> edges=<u>-<v>,<u>-<v>,…
  kQuery,       ///< query tenant=<t> algo=<a> k=<k> [model= eps= seed= reps=]
  kCheckpoint,  ///< checkpoint tenant=<t>  (reply carries hash/epoch/n/m)
  kStats,       ///< stats  (reply body is the JSONL stats dump)
  kShutdown,    ///< shutdown  (drain and stop accepting work)
  kStall,       ///< stall id=<k>  (test-only: park a worker until released)
};

[[nodiscard]] std::string_view verb_name(Verb verb) noexcept;

/// Limits parse_request enforces (the server passes its configured caps).
struct ProtocolLimits {
  std::size_t max_insert_edges = 1 << 16;
  unsigned max_query_k = 32;  ///< exact C_k scans are exponential in k
};

/// One parsed request. Pointer fields reference process-lifetime singletons
/// (registry detectors, CommModel instances) — never owned.
struct Request {
  Verb verb = Verb::kStats;
  std::string tenant;

  // create
  graph::Vertex n = 0;
  std::string family;          ///< empty = start from the empty graph
  std::uint64_t family_seed = 1;

  // insert
  std::vector<incremental::Insert> edges;

  // query
  const core::Detector* algo = nullptr;
  unsigned k = 5;
  const congest::CommModel* model = &congest::CommModel::congest();
  double epsilon = 0.125;
  std::uint64_t seed = 1;
  std::size_t repetitions = 1;

  // stall
  std::uint64_t stall_id = 0;
};

/// Parses one payload. Throws ProtocolError on every malformed input, with
/// a detail message naming the offender and the accepted alternatives
/// (verbs, keys, registered algorithms/models, capability ranges, caps).
[[nodiscard]] Request parse_request(std::string_view payload, const ProtocolLimits& limits = {});

/// Canonical request line for \p r — the loadgen's verdict-multiset tag and
/// the serve-soak repro format. parse_request round-trips it.
[[nodiscard]] std::string format_request(const Request& r);

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

[[nodiscard]] std::string format_error(ErrorCode code, std::string_view detail);

/// "REJECTED overload <reason> queue_depth=<d>" — admission-control shed.
[[nodiscard]] std::string format_rejected(std::string_view reason, std::size_t queue_depth);

/// Canonical verdict body for a query reply: deterministic pure function of
/// the Verdict (no timing, no cache provenance), so replies are byte-equal
/// across worker counts and across verdict-cache hits and misses.
[[nodiscard]] std::string format_verdict(const core::Verdict& verdict);

[[nodiscard]] bool is_ok(std::string_view reply) noexcept;
[[nodiscard]] bool is_rejected(std::string_view reply) noexcept;
[[nodiscard]] bool is_error(std::string_view reply) noexcept;

}  // namespace decycle::serve
