/// \file server.hpp
/// \brief The multi-tenant detection daemon (DESIGN.md §14).
///
/// A Server owns one DetectionEngine whose GraphStore is the tenant
/// namespace: a tenant is a named pinned graph, mutable through the
/// incremental insert path (IncrementalSession — every mutating batch bumps
/// the pinned snapshot's epoch and purges its cached sessions, PR 9's
/// contract). Requests arrive as protocol payloads, pass admission control
/// (bounded queue + per-tenant in-flight caps; anything over the line gets
/// an immediate `REJECTED overload` reply — the server never blocks a
/// client on a full queue and never drops a request silently), and are
/// served by a fixed worker pool. Workers drain the queue in FIFO order and
/// opportunistically batch runs of consecutive *query* ops, grouping them
/// by (graph hash, epoch, model) onto one DetectionEngine::run_batch call —
/// one session lease amortized across the group, the PR 8 batching core.
///
/// The verdict cache is the serving-layer speedup: a detector run is a pure
/// function of (graph content hash, epoch, model, algo, resolved options) —
/// the registry's determinism contract — so its reply body can be memoized
/// under exactly that key. Mutations invalidate by construction (the epoch
/// is in the key), and a cache hit returns byte-identical bytes to the run
/// it memoized, so caching is invisible to the determinism contract below.
///
/// Determinism contract (the serving analogue of the lab's byte-identity):
/// a tenant driven closed-loop (each client awaits the reply before sending
/// the next request for that tenant) observes a reply sequence that is a
/// pure function of its request sequence — independent of worker count,
/// batching, cache state, and co-tenant traffic — provided no request was
/// shed. tests/serve/determinism_test.cpp pins this at 1 vs 8 workers.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "engine/engine.hpp"
#include "incremental/session.hpp"
#include "serve/protocol.hpp"
#include "serve/stats.hpp"

namespace decycle::serve {

struct ServerOptions {
  std::size_t workers = 4;
  std::size_t queue_capacity = 1024;
  /// Per-tenant in-flight cap (queued + executing). A single hot tenant can
  /// fill at most this much of the shared queue before its overflow is shed,
  /// so one tenant's burst cannot starve the rest.
  std::size_t tenant_inflight_cap = 64;
  /// Upper bound on one worker's opportunistic batch of consecutive queries.
  std::size_t max_batch = 32;
  std::size_t session_capacity = engine::SessionPool::kDefaultCapacity;
  /// Memoized (graph hash, epoch, model, algo, options) -> reply entries.
  /// 0 disables the verdict cache (every query runs the detector).
  std::size_t verdict_cache_capacity = 1 << 16;
  ProtocolLimits limits;
  /// Test-only: accept the `stall` verb (parks a worker until
  /// release_stall). Off by default so a production socket cannot wedge
  /// workers remotely.
  bool enable_stall = false;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the worker pool. Idempotent.
  void start();

  /// Stops admission, drains every already-admitted op, joins the workers.
  /// Replies still in the queue are served (a closed-loop client never sees
  /// a dropped request); new submissions get ERROR shutting_down.
  void stop();

  /// Asynchronous submission: parses \p payload, applies admission control,
  /// and guarantees \p on_reply is invoked exactly once — inline for parse
  /// errors / sheds / control verbs, from a worker thread for admitted ops.
  void submit(std::string payload, std::function<void(std::string)> on_reply);

  /// Synchronous convenience — the closed-loop client path. Thread-safe.
  [[nodiscard]] std::string call(const std::string& payload);

  /// The stats dump a `stats` request returns: per-tenant + global latency
  /// JSONL plus engine session counters and verdict-cache counters.
  [[nodiscard]] std::string stats_jsonl() const;

  [[nodiscard]] const ServerOptions& options() const noexcept { return options_; }
  [[nodiscard]] engine::DetectionEngine& engine() noexcept { return engine_; }
  [[nodiscard]] ServeStats& stats() noexcept { return stats_; }
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_acquire);
  }

  // --- test hooks (overload/stall tests) ----------------------------------
  /// Number of workers currently parked in a `stall` op.
  [[nodiscard]] std::size_t stalled_workers() const noexcept {
    return stalled_.load(std::memory_order_acquire);
  }
  /// Releases every parked `stall id=<id>` op.
  void release_stall(std::uint64_t id);
  [[nodiscard]] std::size_t queue_depth() const;

  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t resets = 0;  ///< generational clears at capacity
  };
  [[nodiscard]] CacheStats verdict_cache_stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Tenant {
    Tenant(engine::DetectionEngine& engine, std::string name, graph::Vertex n)
        : session(engine, std::move(name), n) {}
    std::mutex mutex;  ///< serializes session mutation/checkpoint
    incremental::IncrementalSession session;
    /// Canonical packed (u<v) edges already applied — the duplicate guard
    /// the incremental detectors' duplicate-free input contract needs.
    std::unordered_set<std::uint64_t> edge_keys;
    std::atomic<std::size_t> in_flight{0};
  };

  struct Op {
    Request request;
    std::function<void(std::string)> reply;
    std::shared_ptr<Tenant> tenant;  ///< null for stall
    Clock::time_point enqueued;
    std::size_t depth_at_admit = 0;
  };

  void worker_loop();
  void process(Op op);
  void process_query_group(std::vector<Op> ops);
  void finish(Op& op, std::string reply_body);

  [[nodiscard]] std::shared_ptr<Tenant> find_tenant(const std::string& name) const;
  [[nodiscard]] std::string handle_create(const Request& r);
  [[nodiscard]] std::string handle_checkpoint(Tenant& tenant);
  [[nodiscard]] std::string handle_insert(Tenant& tenant, const Request& r);

  [[nodiscard]] static std::string cache_key(const engine::PinnedGraphPtr& pin,
                                             std::uint64_t epoch, const Request& r);

  ServerOptions options_;
  engine::DetectionEngine engine_;
  ServeStats stats_;

  mutable std::mutex tenants_mutex_;
  std::map<std::string, std::shared_ptr<Tenant>, std::less<>> tenants_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Op> queue_;
  bool stopping_ = false;

  std::atomic<bool> shutdown_{false};
  std::atomic<std::size_t> stalled_{0};
  std::mutex stall_mutex_;
  std::condition_variable stall_cv_;
  std::unordered_set<std::uint64_t> released_stalls_;

  mutable std::mutex cache_mutex_;
  std::unordered_map<std::string, std::string> verdict_cache_;
  CacheStats cache_stats_;

  std::vector<std::thread> workers_;
  bool started_ = false;
};

}  // namespace decycle::serve
