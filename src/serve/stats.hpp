/// \file stats.hpp
/// \brief Latency-SLO accounting for the serving daemon.
///
/// Every admitted request is timed submit-to-reply and recorded twice: into
/// its tenant's window and into the global one, both util::Percentiles (for
/// p50/p95/p99 order statistics) plus util::OnlineStats (mean/max and a
/// numerically stable variance for dashboards). Queue depth is sampled at
/// admission; sheds are counted per tenant and globally. The JSONL dump —
/// one record per tenant in lexicographic order, then one global record —
/// is what `stats` requests return and what the daemon writes at shutdown,
/// so an SLO regression is a diffable artifact, not a vibe.
///
/// Thread safety: one mutex per ServeStats. Recording is a few dozen
/// nanoseconds of vector push + Welford update under the lock; at the m10
/// gate's 50k queries/sec that is well under 1% of a core. Percentile
/// *reads* sort lazily under the same lock, which is fine for the
/// stats-on-demand cadence these windows serve.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "util/stats.hpp"

namespace decycle::serve {

/// One window's rendered numbers (milliseconds).
struct LatencySnapshot {
  std::uint64_t count = 0;
  std::uint64_t shed = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

struct QueueSnapshot {
  std::uint64_t peak_depth = 0;   ///< max queue depth observed at admission
  std::uint64_t shed_total = 0;   ///< REJECTED overload replies
  std::uint64_t admitted = 0;     ///< requests that entered the queue
};

class ServeStats {
 public:
  /// Records one served request: \p tenant (empty = a control verb, global
  /// window only), latency in milliseconds, and the queue depth seen at
  /// admission.
  void record(std::string_view tenant, double latency_ms, std::size_t depth_at_admit);

  /// Records one shed (REJECTED overload) request.
  void record_shed(std::string_view tenant, std::size_t depth_at_admit);

  [[nodiscard]] LatencySnapshot global() const;
  [[nodiscard]] LatencySnapshot tenant(std::string_view name) const;
  [[nodiscard]] QueueSnapshot queue() const;

  /// One JSONL record per tenant (lexicographic), then a global record
  /// carrying the queue counters; \p extra appends caller fields (engine
  /// session counters, verdict-cache counters) to the global record.
  [[nodiscard]] std::string jsonl(std::string_view extra = {}) const;

 private:
  struct Window {
    util::Percentiles latency;
    util::OnlineStats online;
    std::uint64_t shed = 0;
  };

  static LatencySnapshot snapshot_locked(Window& w);

  mutable std::mutex mutex_;
  mutable Window global_;
  mutable std::map<std::string, Window, std::less<>> tenants_;
  QueueSnapshot queue_;
};

}  // namespace decycle::serve
