#include "serve/loadgen.hpp"

#include <thread>
#include <unordered_set>

#include "lab/json.hpp"
#include "lab/scenario.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace decycle::serve {

namespace {

/// FNV-1a 64: the stable string fold the digests are built on (std::hash
/// would tie the report to one standard library's implementation).
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t pack_edge(graph::Vertex u, graph::Vertex v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

/// "key=value" token extraction from a reply body. Empty when absent.
std::string_view reply_field(std::string_view reply, std::string_view key) {
  std::string needle = " ";
  needle += key;
  needle += '=';
  const std::size_t pos = reply.find(needle);
  if (pos == std::string_view::npos) return {};
  const std::size_t start = pos + needle.size();
  const std::size_t end = reply.find(' ', start);
  return reply.substr(start, end == std::string_view::npos ? reply.size() - start : end - start);
}

/// The per-tenant seed used by both the op stream and the create request,
/// so the family topology the server builds is exactly reproducible by the
/// client-side duplicate mirror.
std::uint64_t tenant_seed(const LoadgenSpec& spec, std::size_t index) {
  return util::hash_combine(spec.seed, util::splitmix64(0x10adULL + index));
}

struct TenantDriver {
  TenantOutcome outcome;
  graph::Vertex n = 0;             ///< actual vertex count (create reply)
  std::uint64_t family_seed = 0;
  std::unordered_set<std::uint64_t> edges;  ///< duplicate-avoidance mirror
  util::Rng rng{0};
  bool done = false;
};

/// Sends one payload closed-loop, retrying sheds (REJECTED overload replies
/// carry live queue depths, so they are counted but never folded into the
/// determinism digests).
std::string call_retrying(Client& client, const std::string& payload, TenantOutcome& out) {
  for (;;) {
    std::string reply = client.call(payload);
    if (!is_rejected(reply)) return reply;
    ++out.sheds;
  }
}

void fold_reply(TenantOutcome& out, std::string_view reply) {
  out.reply_digest = util::hash_combine(out.reply_digest, fnv1a(reply));
}

}  // namespace

std::string InProcessClient::call(const std::string& payload) { return server_.call(payload); }

LoadgenReport run_loadgen(const LoadgenSpec& spec, const ClientFactory& factory) {
  DECYCLE_CHECK_MSG(spec.tenants > 0, "loadgen: need at least one tenant");
  DECYCLE_CHECK_MSG(spec.client_threads > 0, "loadgen: need at least one client thread");
  DECYCLE_CHECK_MSG(!spec.ks.empty() && !spec.epsilons.empty(),
                    "loadgen: query axes must be non-empty");

  // Resolve the query axes up front so a typo'd spec fails loudly here, and
  // precompute each algo's admissible k subset (e.g. c4 only accepts k=4).
  const core::DetectorRegistry& registry = core::DetectorRegistry::builtin();
  struct AlgoAxis {
    const core::Detector* detector;
    std::vector<unsigned> ks;
  };
  std::vector<AlgoAxis> axes;
  for (const std::string& name : spec.algos) {
    const core::Detector* detector = registry.find(name);
    DECYCLE_CHECK_MSG(detector != nullptr, "loadgen: unknown algo '" + name + "'");
    AlgoAxis axis{detector, {}};
    for (const unsigned k : spec.ks) {
      if (registry.validate_k(*detector, k).empty()) axis.ks.push_back(k);
    }
    DECYCLE_CHECK_MSG(!axis.ks.empty(),
                      "loadgen: no spec k is admissible for algo '" + name + "'");
    axes.push_back(std::move(axis));
  }
  DECYCLE_CHECK_MSG(!axes.empty(), "loadgen: need at least one algo");

  const std::span<const lab::FamilyInfo> families = lab::known_families();
  const std::size_t threads = std::min(spec.client_threads, spec.tenants);

  std::vector<TenantDriver> drivers(spec.tenants);
  for (std::size_t i = 0; i < spec.tenants; ++i) {
    TenantDriver& d = drivers[i];
    d.outcome.name = "t" + std::to_string(i);
    d.outcome.family = std::string(families[i % families.size()].name);
    d.family_seed = tenant_seed(spec, i);
    d.rng = util::Rng(util::hash_combine(d.family_seed, 0x0b5eedULL));
  }

  // One thread drives tenants i with i % threads == t, interleaving one op
  // per owned tenant per round — closed-loop per tenant, concurrent across
  // tenants (the pattern the worker batching is built to exploit).
  auto drive = [&](std::size_t thread_index) {
    const std::unique_ptr<Client> client = factory();
    std::vector<std::size_t> owned;
    for (std::size_t i = thread_index; i < spec.tenants; i += threads) owned.push_back(i);

    // Phase 0: create each owned tenant and seed its duplicate mirror with
    // the family's exact edge set (the server builds the same topology from
    // the same (family, k=5, n, seed) — replicated here via build_topology).
    for (const std::size_t i : owned) {
      TenantDriver& d = drivers[i];
      // hypercube's n is the dimension, not the vertex count — clamp it so
      // a default spec never asks for 2^64 vertices.
      const graph::Vertex family_n =
          d.outcome.family == "hypercube"
              ? std::min<graph::Vertex>(spec.n, 8)
              : spec.n;
      std::string payload = "create tenant=" + d.outcome.name +
                            " n=" + std::to_string(family_n) + " family=" + d.outcome.family +
                            " k=5 seed=" + std::to_string(d.family_seed);
      const std::string reply = call_retrying(*client, payload, d.outcome);
      if (is_error(reply)) {
        ++d.outcome.errors;
        fold_reply(d.outcome, reply);
        d.done = true;
        continue;
      }
      fold_reply(d.outcome, reply);
      d.n = static_cast<graph::Vertex>(std::stoull(std::string(reply_field(reply, "n"))));
      lab::ScenarioCell cell;
      cell.family = d.outcome.family;
      cell.k = 5;
      cell.n = family_n;
      util::Rng family_rng(util::hash_combine(d.family_seed, 0x5e54e5e4ULL));
      const lab::BuiltTopology built = lab::build_topology(cell, family_rng);
      for (const auto& [u, v] : built.graph.edges()) d.edges.insert(pack_edge(u, v));
    }

    for (std::size_t round = 0; round < spec.ops_per_tenant; ++round) {
      for (const std::size_t i : owned) {
        TenantDriver& d = drivers[i];
        if (d.done) continue;
        const double u = d.rng.next_double();
        std::string payload;
        bool is_query = false;
        std::uint64_t batch_edges = 0;
        if (u < spec.mutate_ratio && d.n >= 2) {
          // Insert 1..4 fresh edges, duplicate-free against the mirror.
          const std::size_t want = 1 + static_cast<std::size_t>(d.rng.next_below(4));
          std::string list;
          for (std::size_t e = 0; e < want; ++e) {
            for (int attempt = 0; attempt < 64; ++attempt) {
              const auto a = static_cast<graph::Vertex>(d.rng.next_below(d.n));
              const auto b = static_cast<graph::Vertex>(d.rng.next_below(d.n));
              if (a == b) continue;
              if (!d.edges.insert(pack_edge(a, b)).second) continue;
              if (!list.empty()) list.push_back(',');
              list += std::to_string(a) + "-" + std::to_string(b);
              ++batch_edges;
              break;
            }
          }
          if (list.empty()) continue;  // graph saturated; skip this round
          payload = "insert tenant=" + d.outcome.name + " edges=" + list;
        } else if (u < spec.mutate_ratio + spec.checkpoint_ratio) {
          payload = "checkpoint tenant=" + d.outcome.name;
        } else {
          const AlgoAxis& axis = axes[d.rng.next_below(axes.size())];
          const unsigned k = axis.ks[d.rng.next_below(axis.ks.size())];
          const double eps = spec.epsilons[d.rng.next_below(spec.epsilons.size())];
          const std::uint64_t qseed = d.rng();
          payload = "query tenant=" + d.outcome.name + " algo=" +
                    std::string(axis.detector->name()) + " k=" + std::to_string(k) +
                    " eps=" + lab::json_double(eps) + " seed=" + std::to_string(qseed) +
                    " reps=" + std::to_string(spec.repetitions);
          is_query = true;
        }

        const std::string reply = call_retrying(*client, payload, d.outcome);
        fold_reply(d.outcome, reply);
        if (is_error(reply)) {
          ++d.outcome.errors;
          continue;
        }
        if (is_query) {
          ++d.outcome.queries;
          d.outcome.verdict_multiset += fnv1a(reply);  // wrapping: commutative
          if (reply_field(reply, "accepted") == "1") {
            ++d.outcome.accepted;
          } else {
            ++d.outcome.rejected;
          }
        } else if (batch_edges > 0) {
          ++d.outcome.inserts;
          d.outcome.edges_inserted += batch_edges;
        } else {
          ++d.outcome.checkpoints;
        }
      }
    }

    // Closing checkpoint: the final graph hash is the mutation-path
    // equality the 1-vs-8 test asserts.
    for (const std::size_t i : owned) {
      TenantDriver& d = drivers[i];
      if (d.done) continue;
      const std::string reply =
          call_retrying(*client, "checkpoint tenant=" + d.outcome.name, d.outcome);
      fold_reply(d.outcome, reply);
      if (is_error(reply)) {
        ++d.outcome.errors;
      } else {
        d.outcome.final_hash = std::string(reply_field(reply, "hash"));
      }
    }
  };

  if (threads == 1) {
    drive(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(drive, t);
    for (std::thread& t : pool) t.join();
  }

  LoadgenReport report;
  report.tenants.reserve(spec.tenants);
  for (TenantDriver& d : drivers) {
    report.total_queries += d.outcome.queries;
    report.total_accepted += d.outcome.accepted;
    report.total_rejected += d.outcome.rejected;
    report.total_sheds += d.outcome.sheds;
    report.total_errors += d.outcome.errors;
    report.aggregate_digest = util::hash_combine(report.aggregate_digest, d.outcome.reply_digest);
    report.aggregate_digest =
        util::hash_combine(report.aggregate_digest, d.outcome.verdict_multiset);
    report.aggregate_digest = util::hash_combine(report.aggregate_digest, fnv1a(d.outcome.final_hash));
    report.tenants.push_back(std::move(d.outcome));
  }
  return report;
}

std::string LoadgenReport::jsonl() const {
  std::string out;
  for (const TenantOutcome& t : tenants) {
    lab::JsonWriter json;
    json.begin_object();
    json.field("record", "loadgen_tenant");
    json.field("tenant", t.name);
    json.field("family", t.family);
    json.field("reply_digest", t.reply_digest);
    json.field("verdict_multiset", t.verdict_multiset);
    json.field("final_hash", t.final_hash);
    json.field("queries", t.queries);
    json.field("accepted", t.accepted);
    json.field("rejected", t.rejected);
    json.field("inserts", t.inserts);
    json.field("edges_inserted", t.edges_inserted);
    json.field("checkpoints", t.checkpoints);
    json.field("sheds", t.sheds);
    json.field("errors", t.errors);
    json.end_object();
    out += std::move(json).str();
    out.push_back('\n');
  }
  lab::JsonWriter json;
  json.begin_object();
  json.field("record", "loadgen_aggregate");
  json.field("tenants", static_cast<std::uint64_t>(tenants.size()));
  json.field("total_queries", total_queries);
  json.field("total_accepted", total_accepted);
  json.field("total_rejected", total_rejected);
  json.field("total_sheds", total_sheds);
  json.field("total_errors", total_errors);
  json.field("aggregate_digest", aggregate_digest);
  json.end_object();
  out += std::move(json).str();
  out.push_back('\n');
  return out;
}

}  // namespace decycle::serve
