#include "serve/server.hpp"

#include <bit>
#include <charconv>
#include <future>
#include <utility>

#include "lab/scenario.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace decycle::serve {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[17];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v, 16);
  DECYCLE_CHECK(ec == std::errc{});
  return std::string(buf, ptr);
}

/// Canonical (u < v) packed edge for the tenant's duplicate guard.
std::uint64_t edge_key(graph::Vertex u, graph::Vertex v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      engine_(engine::EngineOptions{.pool = nullptr,
                                    .session_capacity = options_.session_capacity,
                                    .cache_sessions = true}) {
  DECYCLE_CHECK_MSG(options_.workers > 0, "serve: need at least one worker");
  DECYCLE_CHECK_MSG(options_.queue_capacity > 0, "serve: queue capacity must be positive");
  DECYCLE_CHECK_MSG(options_.max_batch > 0, "serve: max_batch must be positive");
}

Server::~Server() { stop(); }

void Server::start() {
  if (started_) return;
  started_ = true;
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Server::stop() {
  {
    std::lock_guard lock(queue_mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  stall_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

std::size_t Server::queue_depth() const {
  std::lock_guard lock(queue_mutex_);
  return queue_.size();
}

void Server::release_stall(std::uint64_t id) {
  {
    std::lock_guard lock(stall_mutex_);
    released_stalls_.insert(id);
  }
  stall_cv_.notify_all();
}

Server::CacheStats Server::verdict_cache_stats() const {
  std::lock_guard lock(cache_mutex_);
  return cache_stats_;
}

std::shared_ptr<Server::Tenant> Server::find_tenant(const std::string& name) const {
  std::lock_guard lock(tenants_mutex_);
  const auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second;
}

void Server::submit(std::string payload, std::function<void(std::string)> on_reply) {
  Request request;
  try {
    request = parse_request(payload, options_.limits);
  } catch (const ProtocolError& e) {
    on_reply(format_error(e.code(), e.what()));
    return;
  } catch (const util::CheckError& e) {
    on_reply(format_error(ErrorCode::kBadRequest, e.what()));
    return;
  }

  // Control verbs are served inline: they must answer even when the queue
  // is saturated (that is the whole point of a stats endpoint).
  switch (request.verb) {
    case Verb::kStats:
      on_reply("OK stats\n" + stats_jsonl());
      return;
    case Verb::kShutdown:
      shutdown_.store(true, std::memory_order_release);
      on_reply("OK shutdown");
      return;
    case Verb::kCreate:
      try {
        on_reply(handle_create(request));
      } catch (const ProtocolError& e) {
        on_reply(format_error(e.code(), e.what()));
      } catch (const util::CheckError& e) {
        on_reply(format_error(ErrorCode::kBadRequest, e.what()));
      }
      return;
    case Verb::kStall:
      if (!options_.enable_stall) {
        on_reply(format_error(ErrorCode::kBadRequest,
                              "stall is a test-only verb (ServerOptions::enable_stall)"));
        return;
      }
      break;
    default:
      break;
  }

  Op op;
  op.request = std::move(request);
  op.reply = std::move(on_reply);
  if (op.request.verb != Verb::kStall) {
    op.tenant = find_tenant(op.request.tenant);
    if (op.tenant == nullptr) {
      std::string known;
      {
        std::lock_guard lock(tenants_mutex_);
        for (const auto& [name, tenant] : tenants_) {
          if (!known.empty()) known += ", ";
          known += name;
        }
      }
      op.reply(format_error(ErrorCode::kUnknownTenant,
                            "unknown tenant '" + op.request.tenant + "'; stored: " +
                                (known.empty() ? "(none — create one first)" : known)));
      return;
    }
  }

  // Admission control under the queue lock: bounded queue, per-tenant
  // in-flight cap. Anything over the line is shed *now* with an explicit
  // REJECTED — the client is never blocked and never left hanging.
  {
    std::unique_lock lock(queue_mutex_);
    if (stopping_ || shutdown_.load(std::memory_order_acquire)) {
      lock.unlock();
      op.reply(format_error(ErrorCode::kShuttingDown, "server is draining; no new work"));
      return;
    }
    const std::size_t depth = queue_.size();
    if (depth >= options_.queue_capacity) {
      lock.unlock();
      stats_.record_shed(op.request.tenant, depth);
      op.reply(format_rejected("queue_full", depth));
      return;
    }
    if (op.tenant != nullptr &&
        op.tenant->in_flight.load(std::memory_order_relaxed) >= options_.tenant_inflight_cap) {
      lock.unlock();
      stats_.record_shed(op.request.tenant, depth);
      op.reply(format_rejected("tenant_inflight_cap", depth));
      return;
    }
    if (op.tenant != nullptr) op.tenant->in_flight.fetch_add(1, std::memory_order_relaxed);
    op.enqueued = Clock::now();
    op.depth_at_admit = depth;
    queue_.push_back(std::move(op));
  }
  queue_cv_.notify_one();
}

std::string Server::call(const std::string& payload) {
  std::promise<std::string> promise;
  std::future<std::string> future = promise.get_future();
  submit(payload, [&promise](std::string reply) { promise.set_value(std::move(reply)); });
  return future.get();
}

void Server::worker_loop() {
  for (;;) {
    std::vector<Op> batch;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Opportunistic batching: runs of consecutive queries leave together
      // and are grouped per (graph hash, epoch, model) onto shared
      // run_batch calls. Only *consecutive* ops are taken, so per-tenant
      // FIFO order — the determinism contract's backbone — is preserved.
      if (batch.front().request.verb == Verb::kQuery) {
        while (!queue_.empty() && batch.size() < options_.max_batch &&
               queue_.front().request.verb == Verb::kQuery) {
          batch.push_back(std::move(queue_.front()));
          queue_.pop_front();
        }
      }
    }
    if (batch.size() == 1 && batch.front().request.verb != Verb::kQuery) {
      process(std::move(batch.front()));
    } else {
      process_query_group(std::move(batch));
    }
  }
}

void Server::finish(Op& op, std::string reply_body) {
  const double latency_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - op.enqueued).count();
  stats_.record(op.request.tenant, latency_ms, op.depth_at_admit);
  if (op.tenant != nullptr) op.tenant->in_flight.fetch_sub(1, std::memory_order_relaxed);
  op.reply(std::move(reply_body));
}

void Server::process(Op op) {
  try {
    switch (op.request.verb) {
      case Verb::kInsert: {
        std::lock_guard lock(op.tenant->mutex);
        finish(op, handle_insert(*op.tenant, op.request));
        return;
      }
      case Verb::kCheckpoint: {
        std::lock_guard lock(op.tenant->mutex);
        finish(op, handle_checkpoint(*op.tenant));
        return;
      }
      case Verb::kStall: {
        stalled_.fetch_add(1, std::memory_order_release);
        {
          std::unique_lock lock(stall_mutex_);
          stall_cv_.wait(lock, [this, &op] {
            if (released_stalls_.contains(op.request.stall_id)) return true;
            std::lock_guard qlock(queue_mutex_);
            return stopping_;
          });
        }
        stalled_.fetch_sub(1, std::memory_order_release);
        finish(op, "OK stall");
        return;
      }
      default:
        finish(op, format_error(ErrorCode::kInternal, "unroutable verb in worker"));
        return;
    }
  } catch (const ProtocolError& e) {
    finish(op, format_error(e.code(), e.what()));
  } catch (const std::exception& e) {
    finish(op, format_error(ErrorCode::kInternal, e.what()));
  }
}

std::string Server::cache_key(const engine::PinnedGraphPtr& pin, std::uint64_t epoch,
                              const Request& r) {
  std::string key = hex64(pin->hash);
  key.push_back('/');
  key += std::to_string(epoch);
  key.push_back('/');
  key += r.model->name();
  key.push_back('/');
  key += r.algo->name();
  key.push_back('/');
  key += std::to_string(r.k);
  key.push_back('/');
  key += hex64(std::bit_cast<std::uint64_t>(r.epsilon));
  key.push_back('/');
  key += std::to_string(r.seed);
  key.push_back('/');
  key += std::to_string(r.repetitions);
  return key;
}

void Server::process_query_group(std::vector<Op> ops) {
  // Resolve every op's snapshot first (brief tenant lock each), then group
  // by (pin, model). Pins are immutable, so the expensive detector runs
  // below happen with no tenant lock held.
  struct Resolved {
    engine::PinnedGraphPtr pin;
    std::uint64_t epoch = 0;
    std::string reply;  ///< non-empty once answered (cache hit or error)
  };
  std::vector<Resolved> resolved(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    Op& op = ops[i];
    try {
      std::lock_guard lock(op.tenant->mutex);
      resolved[i].pin = op.tenant->session.checkpoint();
      resolved[i].epoch = resolved[i].pin->epoch.load(std::memory_order_acquire);
    } catch (const std::exception& e) {
      resolved[i].reply = format_error(ErrorCode::kInternal, e.what());
    }
  }

  // Verdict cache probe.
  std::vector<std::string> keys(ops.size());
  if (options_.verdict_cache_capacity > 0) {
    std::lock_guard lock(cache_mutex_);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (!resolved[i].reply.empty()) continue;
      keys[i] = cache_key(resolved[i].pin, resolved[i].epoch, ops[i].request);
      const auto it = verdict_cache_.find(keys[i]);
      if (it != verdict_cache_.end()) {
        resolved[i].reply = it->second;
        ++cache_stats_.hits;
      } else {
        ++cache_stats_.misses;
      }
    }
  }

  // Group unanswered queries by (pin, model) in first-seen order and run
  // each group through one engine batch (one session lease per group).
  struct Group {
    engine::PinnedGraphPtr pin;
    const congest::CommModel* model;
    std::vector<std::size_t> members;
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!resolved[i].reply.empty()) continue;
    Group* group = nullptr;
    for (Group& g : groups) {
      if (g.pin == resolved[i].pin && g.model == ops[i].request.model) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back({resolved[i].pin, ops[i].request.model, {}});
      group = &groups.back();
    }
    group->members.push_back(i);
  }

  for (Group& group : groups) {
    std::vector<engine::Query> queries;
    queries.reserve(group.members.size());
    for (const std::size_t i : group.members) {
      const Request& r = ops[i].request;
      core::DetectorOptions detector_options;
      detector_options.k = r.k;
      detector_options.epsilon = r.epsilon;
      detector_options.seed = r.seed;
      detector_options.repetitions = r.repetitions;
      queries.push_back(engine::Query{.detector = r.algo,
                                      .options = detector_options,
                                      .model = r.model,
                                      .weight = 1});
    }
    try {
      const std::vector<core::Verdict> verdicts = engine_.run_batch(group.pin, queries);
      for (std::size_t j = 0; j < group.members.size(); ++j) {
        const std::size_t i = group.members[j];
        resolved[i].reply = "OK query " + format_verdict(verdicts[j]);
        if (options_.verdict_cache_capacity > 0) {
          std::lock_guard lock(cache_mutex_);
          if (verdict_cache_.size() >= options_.verdict_cache_capacity) {
            // Generational reset: O(1) amortized, no LRU bookkeeping on the
            // 50k-QPS hit path. A reset only costs re-runs, never wrong
            // answers.
            verdict_cache_.clear();
            ++cache_stats_.resets;
          }
          verdict_cache_.emplace(keys[i], resolved[i].reply);
        }
      }
    } catch (const std::exception& e) {
      for (const std::size_t i : group.members) {
        if (resolved[i].reply.empty()) {
          resolved[i].reply = format_error(ErrorCode::kInternal, e.what());
        }
      }
    }
  }

  for (std::size_t i = 0; i < ops.size(); ++i) {
    finish(ops[i], std::move(resolved[i].reply));
  }
}

std::string Server::handle_create(const Request& r) {
  graph::Graph topology;
  if (!r.family.empty()) {
    if (std::string err = lab::validate_family(r.family, r.k, r.n); !err.empty()) {
      throw ProtocolError(ErrorCode::kBadRequest, err);
    }
    lab::ScenarioCell cell;
    cell.family = r.family;
    cell.k = r.k;
    cell.n = r.n;
    util::Rng rng(util::hash_combine(r.family_seed, 0x5e54e5e4ULL));
    topology = lab::build_topology(cell, rng).graph;
  } else {
    topology = graph::Graph::from_edges(r.n, std::span<const graph::Edge>{});
  }

  auto tenant = std::make_shared<Tenant>(engine_, r.tenant, topology.num_vertices());
  {
    std::lock_guard lock(tenants_mutex_);
    const auto [it, inserted] = tenants_.emplace(r.tenant, tenant);
    if (!inserted) {
      throw ProtocolError(ErrorCode::kTenantExists,
                          "tenant '" + r.tenant + "' already exists; tenant names are "
                          "single-assignment (pick a fresh name)");
    }
  }
  engine::PinnedGraphPtr pin;
  {
    std::lock_guard lock(tenant->mutex);
    if (topology.num_edges() > 0) {
      std::vector<incremental::Insert> inserts;
      inserts.reserve(topology.num_edges());
      for (const auto& [u, v] : topology.edges()) {
        inserts.emplace_back(u, v);
        tenant->edge_keys.insert(edge_key(u, v));
      }
      (void)tenant->session.apply(inserts);
    }
    pin = tenant->session.checkpoint();
  }
  return "OK create tenant=" + r.tenant + " n=" + std::to_string(pin->graph.num_vertices()) +
         " m=" + std::to_string(pin->graph.num_edges()) + " hash=" + hex64(pin->hash);
}

std::string Server::handle_insert(Tenant& tenant, const Request& r) {
  const graph::Vertex n = tenant.session.num_vertices();
  for (std::size_t i = 0; i < r.edges.size(); ++i) {
    const auto [u, v] = r.edges[i];
    if (u >= n || v >= n) {
      throw ProtocolError(ErrorCode::kBadInsert,
                          "edge " + std::to_string(u) + "-" + std::to_string(v) + " at index " +
                              std::to_string(i) + " has an endpoint >= n=" + std::to_string(n));
    }
  }
  // Enforce the incremental detectors' duplicate-free contract loudly
  // (stream.hpp): a duplicate would silently turn the tenant into a
  // multigraph the snapshot then dedups away — verdicts would diverge.
  for (std::size_t i = 0; i < r.edges.size(); ++i) {
    const auto [u, v] = r.edges[i];
    const std::uint64_t key = edge_key(u, v);
    if (!tenant.edge_keys.insert(key).second) {
      // Roll back keys inserted by this batch so the tenant state matches
      // "nothing applied".
      for (std::size_t j = 0; j < i; ++j) {
        tenant.edge_keys.erase(edge_key(r.edges[j].first, r.edges[j].second));
      }
      throw ProtocolError(ErrorCode::kBadInsert,
                          "edge " + std::to_string(u) + "-" + std::to_string(v) + " at index " +
                              std::to_string(i) +
                              " is already present (insert streams are duplicate-free)");
    }
  }
  const incremental::BatchVerdicts verdicts = tenant.session.apply(r.edges);
  std::string out = "OK insert applied=" + std::to_string(r.edges.size()) +
                    " closures=" + std::to_string(verdicts.closures) + " first_closure=";
  std::size_t first = verdicts.closed.size();
  for (std::size_t i = 0; i < verdicts.closed.size(); ++i) {
    if (verdicts.closed[i] != 0) {
      first = i;
      break;
    }
  }
  out += first == verdicts.closed.size() ? std::string("-") : std::to_string(first);
  return out;
}

std::string Server::handle_checkpoint(Tenant& tenant) {
  const engine::PinnedGraphPtr pin = tenant.session.checkpoint();
  return "OK checkpoint hash=" + hex64(pin->hash) +
         " epoch=" + std::to_string(pin->epoch.load(std::memory_order_acquire)) +
         " n=" + std::to_string(pin->graph.num_vertices()) +
         " m=" + std::to_string(pin->graph.num_edges()) +
         " inserts=" + std::to_string(tenant.session.inserts()) +
         " stream_closures=" + std::to_string(tenant.session.closures());
}

std::string Server::stats_jsonl() const {
  const engine::SessionStats sessions = engine_.session_stats();
  const CacheStats cache = verdict_cache_stats();
  std::size_t tenant_count = 0;
  {
    std::lock_guard lock(tenants_mutex_);
    tenant_count = tenants_.size();
  }
  std::string extra = "\"tenants\":" + std::to_string(tenant_count) +
                      ",\"session_hits\":" + std::to_string(sessions.hits) +
                      ",\"session_misses\":" + std::to_string(sessions.misses) +
                      ",\"session_evictions\":" + std::to_string(sessions.evictions) +
                      ",\"session_purges\":" + std::to_string(sessions.purges) +
                      ",\"verdict_hits\":" + std::to_string(cache.hits) +
                      ",\"verdict_misses\":" + std::to_string(cache.misses) +
                      ",\"verdict_resets\":" + std::to_string(cache.resets);
  return stats_.jsonl(extra);
}

}  // namespace decycle::serve
