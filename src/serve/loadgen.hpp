/// \file loadgen.hpp
/// \brief Seeded closed-loop load generator for the serving daemon.
///
/// The loadgen is the serving layer's determinism witness, so its shape is
/// dictated by the Server's contract: every tenant is driven closed-loop by
/// exactly one logical client (the next request is not formed until the
/// previous reply for that tenant arrived), which makes each tenant's
/// non-shed reply sequence a pure function of (spec seed, tenant index) —
/// independent of client thread count, server worker count, batching, and
/// verdict-cache state. Client threads merely partition tenants; adding
/// threads adds concurrency *across* tenants, never reordering *within*
/// one.
///
/// Workload. Tenant i is created over lab graph family
/// `known_families()[i mod |families|]` and then driven through a seeded
/// mix of queries (random registry algo × k × ε), incremental edge inserts
/// (duplicate-free by construction against a client-side mirror), and
/// checkpoints. REJECTED overload replies are counted and retried — they
/// carry live queue depths and so are excluded from the determinism
/// digests; everything else folds into per-tenant digests and typed
/// verdict counts, then into thread-count-independent aggregates in tenant
/// order. tests/serve/determinism_test.cpp pins 1-vs-8 equality of exactly
/// these digests plus the final checkpoint hashes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace decycle::serve {

class Server;

/// Transport abstraction: one synchronous request/reply round trip. The
/// loadgen drives any Client the same way, so the in-process tests and the
/// socket tool share its workload byte-for-byte.
class Client {
 public:
  virtual ~Client() = default;
  /// Sends one payload and blocks for the reply payload.
  [[nodiscard]] virtual std::string call(const std::string& payload) = 0;
};

/// Client over a Server in the same process (the test and soak path).
class InProcessClient final : public Client {
 public:
  explicit InProcessClient(Server& server) : server_(server) {}
  [[nodiscard]] std::string call(const std::string& payload) override;

 private:
  Server& server_;
};

struct LoadgenSpec {
  std::size_t tenants = 4;
  /// Client threads. Tenants are partitioned round-robin across threads;
  /// per-tenant traffic stays closed-loop at any value.
  std::size_t client_threads = 1;
  graph::Vertex n = 64;            ///< family size parameter per tenant
  std::size_t ops_per_tenant = 64; ///< requests after create (excl. final checkpoint)
  /// Op mix, checked in order: u < mutate_ratio -> insert,
  /// u < mutate_ratio + checkpoint_ratio -> checkpoint, else query.
  double mutate_ratio = 0.25;
  double checkpoint_ratio = 0.05;
  std::uint64_t seed = 1;
  /// Query axes (uniform draws). Defaults are congest-capable, any-k algos.
  std::vector<std::string> algos = {"tester", "threshold"};
  std::vector<unsigned> ks = {3, 5};
  std::vector<double> epsilons = {0.25, 0.5};
  std::size_t repetitions = 1;
};

/// Per-tenant outcome — every field a pure function of (spec, tenant index)
/// when nothing but overload varies between runs.
struct TenantOutcome {
  std::string name;
  std::string family;
  /// Order-sensitive FNV-style fold over the non-shed reply bodies.
  std::uint64_t reply_digest = 0;
  /// Commutative (sum of per-reply hashes) fold over query replies only —
  /// the per-tenant verdict *multiset* the 1-vs-8 test compares.
  std::uint64_t verdict_multiset = 0;
  std::string final_hash;  ///< hex graph hash from the closing checkpoint
  std::uint64_t queries = 0;
  std::uint64_t accepted = 0;   ///< query replies with accepted=1
  std::uint64_t rejected = 0;   ///< query replies with accepted=0
  std::uint64_t inserts = 0;    ///< insert requests applied
  std::uint64_t edges_inserted = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t sheds = 0;      ///< REJECTED overload replies (retried)
  std::uint64_t errors = 0;     ///< ERROR replies (workload bug if nonzero)
};

struct LoadgenReport {
  std::vector<TenantOutcome> tenants;  ///< tenant order (index 0..T-1)
  std::uint64_t total_queries = 0;
  std::uint64_t total_accepted = 0;
  std::uint64_t total_rejected = 0;
  std::uint64_t total_sheds = 0;
  std::uint64_t total_errors = 0;
  /// Fold of per-tenant (reply_digest, verdict_multiset, final_hash) in
  /// tenant order — one number whose equality across worker counts is the
  /// whole determinism story.
  std::uint64_t aggregate_digest = 0;

  /// One JSONL record per tenant plus an aggregate record.
  [[nodiscard]] std::string jsonl() const;
};

/// One Client per client thread (a socket client is per-connection state;
/// an in-process client is trivially copyable but goes through the same
/// hook).
using ClientFactory = std::function<std::unique_ptr<Client>()>;

/// Creates the tenants, drives the mixed workload closed-loop, issues a
/// final checkpoint per tenant, and folds the report. Throws CheckError
/// when the spec is unusable (no tenants, unknown algo name, empty axes).
[[nodiscard]] LoadgenReport run_loadgen(const LoadgenSpec& spec, const ClientFactory& factory);

}  // namespace decycle::serve
