#include "serve/protocol.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "util/check.hpp"

namespace decycle::serve {

namespace {

constexpr std::string_view kVerbNames =
    "create, insert, query, checkpoint, stats, shutdown";

[[noreturn]] void bad_request(const std::string& detail) {
  throw ProtocolError(ErrorCode::kBadRequest, detail);
}

template <typename T>
T parse_uint(std::string_view key, std::string_view value) {
  T out{};
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    bad_request("value of " + std::string(key) + "=" + std::string(value) +
                " is not an unsigned integer");
  }
  return out;
}

double parse_double(std::string_view key, std::string_view value) {
  double out{};
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size() || !std::isfinite(out)) {
    bad_request("value of " + std::string(key) + "=" + std::string(value) +
                " is not a finite number");
  }
  return out;
}

/// Splits "u-v,u-v,…" into inserts, enforcing the simple-graph contract
/// the incremental detectors assume.
std::vector<incremental::Insert> parse_edges(std::string_view value, graph::Vertex limit_hint,
                                             const ProtocolLimits& limits) {
  std::vector<incremental::Insert> out;
  std::size_t pos = 0;
  while (pos < value.size()) {
    std::size_t comma = value.find(',', pos);
    if (comma == std::string_view::npos) comma = value.size();
    const std::string_view item = value.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) bad_request("edges= contains an empty item (want u-v,u-v,…)");
    const std::size_t dash = item.find('-');
    if (dash == std::string_view::npos || dash == 0 || dash + 1 >= item.size()) {
      bad_request("edge '" + std::string(item) + "' is not of the form <u>-<v>");
    }
    const auto u = parse_uint<graph::Vertex>("edges", item.substr(0, dash));
    const auto v = parse_uint<graph::Vertex>("edges", item.substr(dash + 1));
    if (u == v) {
      throw ProtocolError(ErrorCode::kBadInsert, "edge " + std::string(item) +
                                                     " is a self-loop (simple graphs only)");
    }
    (void)limit_hint;  // endpoint-vs-n validation needs the tenant; server-side
    out.emplace_back(u, v);
    if (out.size() > limits.max_insert_edges) {
      throw ProtocolError(
          ErrorCode::kOversizedBatch,
          "insert batch exceeds max_insert_edges=" + std::to_string(limits.max_insert_edges) +
              "; split the batch into smaller insert requests");
    }
  }
  if (out.empty()) bad_request("insert needs a non-empty edges= list");
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

std::string encode_frame(std::string_view payload) {
  std::string out = std::to_string(payload.size());
  out.reserve(out.size() + payload.size() + 2);
  out.push_back(' ');
  out.append(payload);
  out.push_back('\n');
  return out;
}

void FrameReader::feed(std::string_view bytes) {
  if (dead_) return;
  buffer_.append(bytes);
}

FrameReader::Status FrameReader::next(std::string& payload) {
  if (dead_) return Status::kError;
  if (buffer_.empty()) return Status::kNeedMore;

  // Length prefix: 1..7 decimal digits then a space. Anything else at the
  // head of a frame is a protocol violation.
  std::size_t digits = 0;
  std::uint64_t length = 0;
  while (digits < buffer_.size() && buffer_[digits] >= '0' && buffer_[digits] <= '9') {
    length = length * 10 + static_cast<std::uint64_t>(buffer_[digits] - '0');
    ++digits;
    if (length > max_frame_bytes_) {
      dead_ = true;
      error_ = "frame length prefix exceeds max_frame_bytes=" +
               std::to_string(max_frame_bytes_);
      return Status::kError;
    }
  }
  if (digits == 0) {
    dead_ = true;
    error_ = "frame must start with a decimal length prefix, got byte 0x" + [this] {
      constexpr char kHex[] = "0123456789abcdef";
      const auto b = static_cast<unsigned char>(buffer_[0]);
      return std::string{kHex[b >> 4], kHex[b & 15]};
    }();
    return Status::kError;
  }
  if (digits == buffer_.size()) return Status::kNeedMore;
  if (buffer_[digits] != ' ') {
    dead_ = true;
    error_ = "frame length prefix must be followed by a single space";
    return Status::kError;
  }
  const std::size_t total = digits + 1 + static_cast<std::size_t>(length) + 1;
  if (buffer_.size() < total) return Status::kNeedMore;
  if (buffer_[total - 1] != '\n') {
    dead_ = true;
    error_ = "frame payload of " + std::to_string(length) +
             " bytes is not terminated by a newline (length prefix wrong?)";
    return Status::kError;
  }
  payload.assign(buffer_, digits + 1, static_cast<std::size_t>(length));
  buffer_.erase(0, total);
  return Status::kFrame;
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kBadFrame: return "bad_frame";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownTenant: return "unknown_tenant";
    case ErrorCode::kTenantExists: return "tenant_exists";
    case ErrorCode::kCapability: return "capability";
    case ErrorCode::kOversizedBatch: return "oversized_batch";
    case ErrorCode::kBadInsert: return "bad_insert";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string_view verb_name(Verb verb) noexcept {
  switch (verb) {
    case Verb::kCreate: return "create";
    case Verb::kInsert: return "insert";
    case Verb::kQuery: return "query";
    case Verb::kCheckpoint: return "checkpoint";
    case Verb::kStats: return "stats";
    case Verb::kShutdown: return "shutdown";
    case Verb::kStall: return "stall";
  }
  return "unknown";
}

Request parse_request(std::string_view payload, const ProtocolLimits& limits) {
  // Tokenize on single spaces. Leading/trailing/double spaces are malformed:
  // the grammar is canonical so format_request round-trips bytes.
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < payload.size()) {
    std::size_t space = payload.find(' ', pos);
    if (space == std::string_view::npos) space = payload.size();
    if (space == pos) bad_request("empty token (double or leading space) in request");
    tokens.push_back(payload.substr(pos, space - pos));
    pos = space + 1;
  }
  if (tokens.empty()) bad_request(std::string("empty request; verbs: ") + std::string(kVerbNames));

  Request r;
  const std::string_view verb = tokens.front();
  if (verb == "create") r.verb = Verb::kCreate;
  else if (verb == "insert") r.verb = Verb::kInsert;
  else if (verb == "query") r.verb = Verb::kQuery;
  else if (verb == "checkpoint") r.verb = Verb::kCheckpoint;
  else if (verb == "stats") r.verb = Verb::kStats;
  else if (verb == "shutdown") r.verb = Verb::kShutdown;
  else if (verb == "stall") r.verb = Verb::kStall;
  else {
    bad_request("unknown verb '" + std::string(verb) + "'; verbs: " + std::string(kVerbNames));
  }

  bool saw_k = false;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      bad_request("token '" + std::string(token) + "' is not of the form key=value");
    }
    const std::string_view key = token.substr(0, eq);
    const std::string_view value = token.substr(eq + 1);
    if (value.empty()) bad_request("key '" + std::string(key) + "' has an empty value");

    auto expect_verbs = [&](std::initializer_list<Verb> verbs, std::string_view accepted) {
      if (std::find(verbs.begin(), verbs.end(), r.verb) == verbs.end()) {
        bad_request("key '" + std::string(key) + "' is not accepted by verb '" +
                    std::string(verb) + "' (accepted keys: " + std::string(accepted) + ")");
      }
    };
    const auto keys_for = [&]() -> std::string_view {
      switch (r.verb) {
        case Verb::kCreate: return "tenant, n, family, seed";
        case Verb::kInsert: return "tenant, edges";
        case Verb::kQuery: return "tenant, algo, k, model, eps, seed, reps";
        case Verb::kCheckpoint: return "tenant";
        case Verb::kStall: return "id";
        default: return "(none)";
      }
    };

    if (key == "tenant") {
      expect_verbs({Verb::kCreate, Verb::kInsert, Verb::kQuery, Verb::kCheckpoint}, keys_for());
      r.tenant = std::string(value);
    } else if (key == "n") {
      expect_verbs({Verb::kCreate}, keys_for());
      r.n = parse_uint<graph::Vertex>(key, value);
    } else if (key == "family") {
      expect_verbs({Verb::kCreate}, keys_for());
      r.family = std::string(value);
    } else if (key == "edges") {
      expect_verbs({Verb::kInsert}, keys_for());
      r.edges = parse_edges(value, r.n, limits);
    } else if (key == "algo") {
      expect_verbs({Verb::kQuery}, keys_for());
      r.algo = core::DetectorRegistry::builtin().find(value);
      if (r.algo == nullptr) {
        bad_request("unknown algo '" + std::string(value) +
                    "'; registered: " + core::DetectorRegistry::builtin().known_names());
      }
    } else if (key == "k") {
      expect_verbs({Verb::kQuery, Verb::kCreate}, keys_for());
      r.k = parse_uint<unsigned>(key, value);
      saw_k = true;
    } else if (key == "model") {
      expect_verbs({Verb::kQuery}, keys_for());
      r.model = congest::CommModel::find(value);
      if (r.model == nullptr) {
        bad_request("unknown model '" + std::string(value) +
                    "'; registered: " + congest::CommModel::known_names());
      }
    } else if (key == "eps") {
      expect_verbs({Verb::kQuery}, keys_for());
      r.epsilon = parse_double(key, value);
      if (r.epsilon <= 0.0 || r.epsilon > 1.0) {
        bad_request("eps=" + std::string(value) + " outside (0, 1]");
      }
    } else if (key == "seed") {
      expect_verbs({Verb::kQuery, Verb::kCreate}, keys_for());
      if (r.verb == Verb::kCreate) r.family_seed = parse_uint<std::uint64_t>(key, value);
      else r.seed = parse_uint<std::uint64_t>(key, value);
    } else if (key == "reps") {
      expect_verbs({Verb::kQuery}, keys_for());
      r.repetitions = parse_uint<std::size_t>(key, value);
    } else if (key == "id") {
      expect_verbs({Verb::kStall}, keys_for());
      r.stall_id = parse_uint<std::uint64_t>(key, value);
    } else {
      bad_request("unknown key '" + std::string(key) + "' for verb '" + std::string(verb) +
                  "' (accepted keys: " + std::string(keys_for()) + ")");
    }
  }

  // Per-verb required fields and capability gating.
  switch (r.verb) {
    case Verb::kCreate:
      if (r.tenant.empty()) bad_request("create requires tenant=<name>");
      if (r.n == 0) bad_request("create requires n=<vertices> (n >= 1)");
      break;
    case Verb::kInsert:
      if (r.tenant.empty()) bad_request("insert requires tenant=<name>");
      if (r.edges.empty()) bad_request("insert requires edges=<u>-<v>,…");
      break;
    case Verb::kCheckpoint:
      if (r.tenant.empty()) bad_request("checkpoint requires tenant=<name>");
      break;
    case Verb::kQuery: {
      if (r.tenant.empty()) bad_request("query requires tenant=<name>");
      if (r.algo == nullptr) {
        bad_request("query requires algo=<name>; registered: " +
                    core::DetectorRegistry::builtin().known_names());
      }
      if (saw_k && r.k > limits.max_query_k) {
        throw ProtocolError(ErrorCode::kCapability,
                            "k=" + std::to_string(r.k) + " exceeds the server's max_query_k=" +
                                std::to_string(limits.max_query_k) +
                                " (exact C_k scans are exponential in k)");
      }
      const auto& registry = core::DetectorRegistry::builtin();
      if (std::string err = registry.validate_k(*r.algo, r.k); !err.empty()) {
        throw ProtocolError(ErrorCode::kCapability, err);
      }
      if (std::string err = registry.validate_model(*r.algo, *r.model); !err.empty()) {
        throw ProtocolError(ErrorCode::kCapability, err);
      }
      break;
    }
    case Verb::kStats:
    case Verb::kShutdown:
    case Verb::kStall:
      break;
  }
  return r;
}

std::string format_request(const Request& r) {
  std::string out(verb_name(r.verb));
  const auto kv = [&out](std::string_view key, const std::string& value) {
    out.push_back(' ');
    out.append(key);
    out.push_back('=');
    out.append(value);
  };
  switch (r.verb) {
    case Verb::kCreate:
      kv("tenant", r.tenant);
      kv("n", std::to_string(r.n));
      if (!r.family.empty()) {
        kv("family", r.family);
        kv("k", std::to_string(r.k));
        kv("seed", std::to_string(r.family_seed));
      }
      break;
    case Verb::kInsert: {
      kv("tenant", r.tenant);
      std::string edges;
      for (const auto& [u, v] : r.edges) {
        if (!edges.empty()) edges.push_back(',');
        edges += std::to_string(u) + "-" + std::to_string(v);
      }
      kv("edges", edges);
      break;
    }
    case Verb::kQuery: {
      kv("tenant", r.tenant);
      kv("algo", std::string(r.algo != nullptr ? r.algo->name() : std::string_view("?")));
      kv("k", std::to_string(r.k));
      if (r.model->kind() != congest::CommModelKind::kCongest) {
        kv("model", std::string(r.model->name()));
      }
      // Canonical shortest round-trip form for eps.
      char buf[32];
      const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), r.epsilon);
      DECYCLE_CHECK(ec == std::errc{});
      kv("eps", std::string(buf, ptr));
      kv("seed", std::to_string(r.seed));
      kv("reps", std::to_string(r.repetitions));
      break;
    }
    case Verb::kCheckpoint:
      kv("tenant", r.tenant);
      break;
    case Verb::kStall:
      kv("id", std::to_string(r.stall_id));
      break;
    case Verb::kStats:
    case Verb::kShutdown:
      break;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Replies
// ---------------------------------------------------------------------------

std::string format_error(ErrorCode code, std::string_view detail) {
  std::string out = "ERROR ";
  out.append(error_code_name(code));
  out.push_back(' ');
  out.append(detail);
  return out;
}

std::string format_rejected(std::string_view reason, std::size_t queue_depth) {
  std::string out = "REJECTED overload ";
  out.append(reason);
  out.append(" queue_depth=");
  out.append(std::to_string(queue_depth));
  return out;
}

std::string format_verdict(const core::Verdict& verdict) {
  std::string out = "accepted=";
  out.append(verdict.accepted ? "1" : "0");
  out.append(" rejecting=").append(std::to_string(verdict.rejecting_nodes));
  out.append(" reps=").append(std::to_string(verdict.repetitions));
  out.append(" rounds=").append(std::to_string(verdict.stats.rounds_executed));
  out.append(" witness=");
  if (verdict.witness.empty()) {
    out.push_back('-');
  } else {
    for (std::size_t i = 0; i < verdict.witness.size(); ++i) {
      if (i != 0) out.push_back('-');
      out.append(std::to_string(verdict.witness[i]));
    }
  }
  return out;
}

bool is_ok(std::string_view reply) noexcept { return reply.rfind("OK", 0) == 0; }
bool is_rejected(std::string_view reply) noexcept { return reply.rfind("REJECTED", 0) == 0; }
bool is_error(std::string_view reply) noexcept { return reply.rfind("ERROR", 0) == 0; }

}  // namespace decycle::serve
