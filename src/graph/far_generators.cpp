#include "graph/far_generators.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/logging.hpp"

namespace decycle::graph {

namespace {

/// Applies a random permutation to vertex labels of graph + planted cycles.
void shuffle_labels(Graph& g, std::vector<std::vector<Vertex>>& planted, util::Rng& rng) {
  const auto perm = rng.permutation(g.num_vertices());
  GraphBuilder b(g.num_vertices());
  for (const auto& [u, v] : g.edges()) b.add_edge(perm[u], perm[v]);
  g = b.build();
  for (auto& cycle : planted)
    for (auto& v : cycle) v = perm[v];
}

}  // namespace

FarInstance planted_cycles_instance(const PlantedOptions& opt, util::Rng& rng) {
  DECYCLE_CHECK_MSG(opt.k >= 3, "cycle length must be at least 3");
  DECYCLE_CHECK_MSG(opt.num_cycles >= 1, "need at least one planted cycle");

  FarInstance out;
  GraphBuilder b;
  const auto k = static_cast<Vertex>(opt.k);
  for (std::size_t c = 0; c < opt.num_cycles; ++c) {
    const auto base = static_cast<Vertex>(c * opt.k);
    std::vector<Vertex> planted_cycle;
    planted_cycle.reserve(opt.k);
    for (Vertex j = 0; j < k; ++j) {
      b.add_edge(base + j, base + (j + 1) % k);
      planted_cycle.push_back(base + j);
    }
    out.planted.push_back(std::move(planted_cycle));
  }

  Vertex next = static_cast<Vertex>(opt.num_cycles * opt.k);
  if (opt.connect) {
    // One bridge between consecutive cycles; bridges are cut edges.
    for (std::size_t c = 0; c + 1 < opt.num_cycles; ++c) {
      b.add_edge(static_cast<Vertex>(c * opt.k), static_cast<Vertex>((c + 1) * opt.k));
    }
  }
  for (std::size_t p = 0; p < opt.padding_leaves; ++p) {
    // A fresh leaf hung on a random existing vertex: acyclic padding.
    const auto host = static_cast<Vertex>(rng.next_below(next));
    b.add_edge(host, next);
    ++next;
  }

  Graph g = b.build();
  if (opt.shuffle) {
    shuffle_labels(g, out.planted, rng);
  }
  out.graph = std::move(g);
  out.description = "planted(" + std::to_string(opt.num_cycles) + "xC" + std::to_string(opt.k) +
                    ", pad=" + std::to_string(opt.padding_leaves) + ")";
  return out;
}

Graph high_girth_graph(Vertex n, std::size_t m_target, unsigned k, util::Rng& rng) {
  DECYCLE_CHECK_MSG(n >= 2, "need at least two vertices");
  GraphBuilder b(n);
  // Incremental insertion: adding {u,v} creates cycles of length
  // dist(u,v) + 1 and longer only, so requiring dist(u,v) >= k keeps all
  // cycles strictly longer than k.
  std::vector<Edge> accepted;
  Graph current = b.build();
  std::size_t stale = 0;
  const std::size_t max_stale = 50 * m_target + 1000;
  while (accepted.size() < m_target && stale < max_stale) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto v = static_cast<Vertex>(rng.next_below(n));
    if (u == v || current.has_edge(u, v)) {
      ++stale;
      continue;
    }
    const auto dist = bfs_distances(current, u, k - 1);
    if (dist[v] != kUnreachable) {  // dist(u,v) <= k-1: would close a short cycle
      ++stale;
      continue;
    }
    accepted.emplace_back(u, v);
    current = Graph::from_edges(n, accepted);  // rebuild; fine at generator scale
    stale = 0;
  }
  if (accepted.size() < m_target) {
    DECYCLE_LOG_WARN << "high_girth_graph: placed " << accepted.size() << "/" << m_target
                     << " edges (girth constraint saturated)";
  }
  return current;
}

FarInstance noisy_far_instance(const NoisyFarOptions& opt, util::Rng& rng) {
  DECYCLE_CHECK_MSG(opt.k >= 3, "cycle length must be at least 3");
  DECYCLE_CHECK_MSG(opt.background_n >= static_cast<Vertex>(2 * opt.k),
                    "background too small for planted cycles");

  Graph background = high_girth_graph(opt.background_n, opt.background_m, opt.k, rng);

  std::unordered_set<std::pair<std::uint64_t, std::uint64_t>, util::PairHash> used;
  for (const auto& [u, v] : background.edges()) used.insert({u, v});

  GraphBuilder b(opt.background_n);
  for (const auto& [u, v] : background.edges()) b.add_edge(u, v);

  FarInstance out;
  std::size_t attempts = 0;
  while (out.planted.size() < opt.num_cycles) {
    DECYCLE_CHECK_MSG(++attempts < 200 * opt.num_cycles + 1000,
                      "could not plant edge-disjoint cycles (instance too dense)");
    auto sample = rng.sample_distinct(opt.background_n, opt.k);
    std::vector<Vertex> cycle(sample.begin(), sample.end());
    bool fresh = true;
    for (std::size_t i = 0; i < cycle.size() && fresh; ++i) {
      const Vertex a = cycle[i];
      const Vertex c = cycle[(i + 1) % cycle.size()];
      if (used.contains({std::min<std::uint64_t>(a, c), std::max<std::uint64_t>(a, c)})) {
        fresh = false;
      }
    }
    if (!fresh) continue;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      const Vertex a = cycle[i];
      const Vertex c = cycle[(i + 1) % cycle.size()];
      used.insert({std::min<std::uint64_t>(a, c), std::max<std::uint64_t>(a, c)});
      b.add_edge(a, c);
    }
    out.planted.push_back(std::move(cycle));
  }

  out.graph = b.build();
  out.description = "noisy(" + std::to_string(opt.num_cycles) + "xC" + std::to_string(opt.k) +
                    " over girth>" + std::to_string(opt.k) + " background)";
  return out;
}

FarInstance layered_instance(unsigned k, Vertex layer_size, unsigned shifts, util::Rng& rng) {
  DECYCLE_CHECK_MSG(k >= 3, "cycle length must be at least 3");
  DECYCLE_CHECK_MSG(shifts >= 1 && shifts <= layer_size, "shifts must be in [1, layer_size]");
  DECYCLE_CHECK_MSG(std::gcd<std::uint64_t>(layer_size, k - 1) == 1,
                    "layer_size must be coprime with k-1 for edge-disjointness");

  const Vertex s = layer_size;
  const auto vertex_at = [s](unsigned layer, std::uint64_t idx) {
    return static_cast<Vertex>(layer * s + idx % s);
  };

  FarInstance out;
  GraphBuilder b(static_cast<Vertex>(k) * s);
  for (unsigned sigma = 0; sigma < shifts; ++sigma) {
    for (Vertex i = 0; i < s; ++i) {
      std::vector<Vertex> cycle;
      cycle.reserve(k);
      for (unsigned j = 0; j < k; ++j) {
        cycle.push_back(vertex_at(j, static_cast<std::uint64_t>(i) +
                                         static_cast<std::uint64_t>(j) * sigma));
      }
      for (unsigned j = 0; j < k; ++j) b.add_edge(cycle[j], cycle[(j + 1) % k]);
      out.planted.push_back(std::move(cycle));
    }
  }
  Graph g = b.build();
  // Edge-disjointness is structural; make it a hard failure if the
  // construction is ever mis-parameterized.
  DECYCLE_CHECK_MSG(g.num_edges() == static_cast<std::size_t>(k) * s * shifts,
                    "layered instance lost edges: planted cycles not edge-disjoint");
  shuffle_labels(g, out.planted, rng);
  out.graph = std::move(g);
  out.description = "layered(k=" + std::to_string(k) + ", s=" + std::to_string(layer_size) +
                    ", shifts=" + std::to_string(shifts) + ")";
  return out;
}

const char* family_name(CkFreeFamily family) noexcept {
  switch (family) {
    case CkFreeFamily::kForest: return "forest";
    case CkFreeFamily::kBipartite: return "bipartite";
    case CkFreeFamily::kHighGirth: return "high-girth";
    case CkFreeFamily::kCliqueBlowup: return "K(k-1)-blowup";
    case CkFreeFamily::kSubdividedClique: return "subdivided-clique";
  }
  return "?";
}

std::vector<CkFreeFamily> ck_free_families_for(unsigned k) {
  std::vector<CkFreeFamily> out{CkFreeFamily::kForest, CkFreeFamily::kHighGirth,
                                CkFreeFamily::kCliqueBlowup, CkFreeFamily::kSubdividedClique};
  if (k % 2 == 1) out.push_back(CkFreeFamily::kBipartite);
  return out;
}

namespace {

/// Smallest t >= 2 (from a fixed prime list) that does not divide k; cycle
/// lengths in the t-subdivision of any graph are multiples of t, so the
/// subdivision is Ck-free.
unsigned subdivision_factor(unsigned k) {
  for (const unsigned t : {2U, 3U, 5U, 7U, 11U, 13U}) {
    if (k % t != 0) return t;
  }
  DECYCLE_CHECK_MSG(false, "no subdivision factor for this k (k too composite)");
  return 0;
}

Graph subdivided_clique(unsigned k, Vertex n_target) {
  const unsigned t = subdivision_factor(k);
  // K_m subdivided t-fold has m + m(m-1)/2 * (t-1) vertices; pick the largest
  // m fitting in n_target (at least 3 so cycles exist pre-subdivision).
  Vertex m = 3;
  while (true) {
    const Vertex next = m + 1;
    const std::uint64_t size = next + static_cast<std::uint64_t>(next) * (next - 1) / 2 * (t - 1);
    if (size > n_target) break;
    m = next;
    if (m > 2000) break;
  }
  GraphBuilder b(m);
  Vertex fresh = m;
  for (Vertex u = 0; u < m; ++u) {
    for (Vertex v = u + 1; v < m; ++v) {
      Vertex prev = u;
      for (unsigned seg = 1; seg < t; ++seg) {
        b.add_edge(prev, fresh);
        prev = fresh;
        ++fresh;
      }
      b.add_edge(prev, v);
    }
  }
  return b.build();
}

Graph clique_blowup(unsigned k, Vertex n_target) {
  // Disjoint K_{k-1} components joined by bridges: every cycle lives inside
  // one clique, so the longest cycle has k-1 vertices.
  const auto part = static_cast<Vertex>(k - 1);
  const Vertex parts = std::max<Vertex>(1, n_target / part);
  GraphBuilder b(parts * part);
  for (Vertex p = 0; p < parts; ++p) {
    const Vertex base = p * part;
    for (Vertex u = 0; u < part; ++u)
      for (Vertex v = u + 1; v < part; ++v) b.add_edge(base + u, base + v);
    if (p + 1 < parts) b.add_edge(base, base + part);  // bridge (cut edge)
  }
  b.ensure_vertices(parts * part);
  return b.build();
}

}  // namespace

Graph ck_free_instance(CkFreeFamily family, unsigned k, Vertex n, util::Rng& rng) {
  DECYCLE_CHECK_MSG(k >= 3, "cycle length must be at least 3");
  DECYCLE_CHECK_MSG(n >= 4, "instance too small");
  switch (family) {
    case CkFreeFamily::kForest:
      return random_tree(n, rng);
    case CkFreeFamily::kBipartite: {
      DECYCLE_CHECK_MSG(k % 2 == 1, "bipartite family only applies to odd k");
      const Vertex a = n / 2;
      const Vertex b = n - a;
      const std::size_t m = std::min<std::size_t>(static_cast<std::size_t>(a) * b, 2 * n);
      return random_bipartite(a, b, m, rng);
    }
    case CkFreeFamily::kHighGirth:
      return high_girth_graph(n, 2 * static_cast<std::size_t>(n), k, rng);
    case CkFreeFamily::kCliqueBlowup:
      return clique_blowup(k, n);  // for k=3 this degenerates to a K_2 forest, still C3-free
    case CkFreeFamily::kSubdividedClique:
      return subdivided_clique(k, n);
  }
  DECYCLE_CHECK_MSG(false, "unknown family");
  return {};
}

}  // namespace decycle::graph
