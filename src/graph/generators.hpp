/// \file generators.hpp
/// \brief Deterministic and random graph families used across tests,
/// examples, and experiments.
///
/// All random generators take an explicit Rng so every instance is
/// reproducible from a seed. Vertices are 0..n-1; generators guarantee
/// simple graphs (the builders deduplicate).
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace decycle::graph {

/// Path v0-v1-...-v_{n-1}.
[[nodiscard]] Graph path(Vertex n);

/// Cycle on n >= 3 vertices.
[[nodiscard]] Graph cycle(Vertex n);

/// Complete graph K_n.
[[nodiscard]] Graph complete(Vertex n);

/// Complete bipartite graph K_{a,b}; sides are [0,a) and [a,a+b).
[[nodiscard]] Graph complete_bipartite(Vertex a, Vertex b);

/// Star with one hub and n-1 leaves.
[[nodiscard]] Graph star(Vertex n);

/// rows x cols grid; \p wrap makes it a torus.
[[nodiscard]] Graph grid(Vertex rows, Vertex cols, bool wrap = false);

/// d-dimensional hypercube (2^d vertices).
[[nodiscard]] Graph hypercube(unsigned d);

/// Lollipop: K_{clique} with a path of \p tail vertices attached.
[[nodiscard]] Graph lollipop(Vertex clique, Vertex tail);

/// Wheel: cycle on n-1 rim vertices [1, n) plus hub 0 adjacent to all of
/// them. Contains Ck for every 3 <= k <= n (rim arcs close through the hub).
[[nodiscard]] Graph wheel(Vertex n);

/// Barbell: two K_{clique}s joined by a path of \p bridge vertices.
[[nodiscard]] Graph barbell(Vertex clique, Vertex bridge);

/// Connected caveman: \p caves cliques of size \p cave_size arranged in a
/// ring, consecutive caves sharing one connecting edge. A classic clustered
/// topology; the inter-cave ring creates one long global cycle.
[[nodiscard]] Graph caveman(Vertex caves, Vertex cave_size);

/// Circulant C_n(1..k): vertex u adjacent to u±j (mod n) for 1 <= j <= k;
/// degree 2k everywhere. Requires n >= 2k+1. Edges are emitted in
/// lexicographic order straight into the streaming sort-free CSR build, so
/// million-node instances construct in O(m) — the scale bench's workhorse
/// family (its clustered numbering also compresses maximally under the
/// bitset adjacency).
[[nodiscard]] Graph circulant(Vertex n, std::uint32_t k,
                              AdjacencyMode mode = AdjacencyMode::kAuto);

/// Uniform random labelled tree on n vertices (Prüfer-style attachment).
[[nodiscard]] Graph random_tree(Vertex n, util::Rng& rng);

/// G(n, m): m distinct edges sampled uniformly without replacement.
[[nodiscard]] Graph erdos_renyi_gnm(Vertex n, std::size_t m, util::Rng& rng);

/// G(n, p): each edge present independently with probability p.
[[nodiscard]] Graph erdos_renyi_gnp(Vertex n, double p, util::Rng& rng);

/// Random d-regular graph via the configuration model (resampled until
/// simple). Requires n*d even and d < n.
[[nodiscard]] Graph random_regular(Vertex n, unsigned d, util::Rng& rng);

/// Random bipartite graph with sides a, b and m distinct edges.
[[nodiscard]] Graph random_bipartite(Vertex a, Vertex b, std::size_t m, util::Rng& rng);

/// Random connected graph: random tree plus (m - (n-1)) random extra edges.
[[nodiscard]] Graph random_connected(Vertex n, std::size_t m, util::Rng& rng);

/// Adds (n_parts - 1) bridge edges connecting consecutive components of a
/// disjoint union built from equal-sized parts. Bridges are cut edges, so
/// they lie on no cycle and cannot change Ck-freeness or farness
/// certificates. \p part_reps must contain one representative vertex per part.
[[nodiscard]] Graph connect_components(const Graph& g, std::span<const Vertex> part_reps);

}  // namespace decycle::graph
