/// \file sparse_bitset.hpp
/// \brief Compressed sparse bitsets and the bitset adjacency representation.
///
/// A sparse bitset stores a set of 32-bit values as a sorted element list of
/// (word index, 64-bit mask) pairs — the SparseBitVector idiom: only words
/// with at least one set bit exist, so a set whose members cluster (as graph
/// neighborhoods do under locality-preserving vertex numbering — grids,
/// circulants, communities) costs ~12 bytes per *word* instead of 4 bytes
/// per *member*, and membership is a binary search over words followed by a
/// bit test instead of a search over members.
///
/// BitsetAdjacency flattens one such set per vertex into CSR-of-words form
/// (shared offset table, struct-of-arrays element storage — no padding).
/// Graph builds it automatically above a size/degree threshold (or on
/// request) and routes has_edge through it; the port-ordered neighbor
/// arrays stay authoritative for iteration, so the CONGEST port model is
/// untouched (DESIGN.md §10).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace decycle::graph {

/// One growable sparse bitset. Building in ascending order is O(1)
/// amortized per insert; out-of-order inserts pay a shift.
class SparseBitset {
 public:
  void insert(std::uint32_t x);
  [[nodiscard]] bool test(std::uint32_t x) const noexcept;

  /// Number of set bits.
  [[nodiscard]] std::size_t count() const noexcept;
  /// Number of occupied 64-bit words.
  [[nodiscard]] std::size_t word_count() const noexcept { return words_.size(); }

  /// |this ∩ other| via a linear word merge (the triangle-counting kernel).
  [[nodiscard]] std::size_t intersect_count(const SparseBitset& other) const noexcept;

  [[nodiscard]] std::span<const std::uint32_t> words() const noexcept { return words_; }
  [[nodiscard]] std::span<const std::uint64_t> bits() const noexcept { return bits_; }

 private:
  std::vector<std::uint32_t> words_;  ///< sorted word indices
  std::vector<std::uint64_t> bits_;   ///< masks, in lockstep with words_
};

/// Per-vertex sparse bitsets over the neighbor relation, flattened into one
/// CSR-of-words table. Immutable after build.
class BitsetAdjacency {
 public:
  /// Builds from a CSR adjacency whose per-vertex neighbor lists are sorted
  /// (Graph's invariant); grouping neighbors into words is then one linear
  /// sweep.
  [[nodiscard]] static BitsetAdjacency build(std::uint32_t n,
                                             std::span<const std::size_t> offsets,
                                             std::span<const std::uint32_t> adjacency);

  /// Membership: is v a neighbor of u?
  [[nodiscard]] bool test(std::uint32_t u, std::uint32_t v) const noexcept;

  /// Total occupied words across all vertices (compression diagnostics:
  /// compare against the 2m adjacency entries).
  [[nodiscard]] std::size_t total_words() const noexcept { return words_.size(); }

  [[nodiscard]] std::span<const std::uint32_t> vertex_words(std::uint32_t u) const noexcept {
    return {words_.data() + offsets_[u], words_.data() + offsets_[u + 1]};
  }
  [[nodiscard]] std::span<const std::uint64_t> vertex_bits(std::uint32_t u) const noexcept {
    return {bits_.data() + offsets_[u], bits_.data() + offsets_[u + 1]};
  }

 private:
  std::vector<std::size_t> offsets_;  ///< n+1 entries into words_/bits_
  std::vector<std::uint32_t> words_;
  std::vector<std::uint64_t> bits_;
};

}  // namespace decycle::graph
