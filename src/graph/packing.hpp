/// \file packing.hpp
/// \brief Greedy edge-disjoint Ck packing — the Lemma 4 certifier.
///
/// Lemma 4 (quoted from [20] in the paper): an m-edge graph that is ε-far
/// from H-free contains at least εm/|E(H)| edge-disjoint copies of H. The
/// greedy packing here produces an explicit family of edge-disjoint k-cycles;
/// its size is both (a) a lower bound certificate on the deletion distance to
/// Ck-freeness (each packed cycle needs one deleted edge), and (b) the
/// measured quantity in experiment T7.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/subgraph.hpp"

namespace decycle::graph {

struct Packing {
  std::vector<std::vector<Vertex>> cycles;  ///< each of length k
  std::size_t edges_remaining = 0;          ///< alive edges after packing

  [[nodiscard]] std::size_t size() const noexcept { return cycles.size(); }

  /// The graph is ε'-far from Ck-free for every ε' < epsilon_lower_bound(m):
  /// destroying the packing requires >= |cycles| deletions.
  [[nodiscard]] double epsilon_lower_bound(std::size_t m) const noexcept {
    return m == 0 ? 0.0 : static_cast<double>(cycles.size()) / static_cast<double>(m);
  }
};

/// Greedily packs edge-disjoint k-cycles: scans edges in index order, finds a
/// cycle through each still-alive edge in the residual graph, removes its
/// edges. One pass yields a maximal packing (removals only destroy cycles).
/// Every returned cycle is validated against the input graph.
[[nodiscard]] Packing greedy_cycle_packing(const Graph& g, unsigned k);

/// Deletion distance upper bound: a hitting set for all k-cycles built by
/// removing one edge per packed cycle plus whatever else is needed (greedy).
/// Used in tests to sandwich the true distance on small instances.
[[nodiscard]] std::size_t greedy_deletion_upper_bound(const Graph& g, unsigned k);

}  // namespace decycle::graph
