/// \file far_generators.hpp
/// \brief Instance generators with farness certificates, plus Ck-free families.
///
/// The tester's completeness guarantee (Theorem 1) is conditioned on the
/// input being ε-far from Ck-free in the sparse model: no combination of at
/// most εm edge insertions/deletions yields a Ck-free graph. Insertions never
/// destroy cycles, so the distance is a pure deletion distance, and a family
/// of c pairwise edge-disjoint k-cycles certifies distance >= c (each packed
/// cycle must lose an edge). Every generator here returns that certificate
/// explicitly, so experiment tables report *certified* ε values instead of
/// hoping a random graph is far.
///
/// The Ck-free families back the soundness experiments (T1): the tester must
/// accept them with probability 1. Each family is Ck-free by construction
/// (argument in the per-generator comment) and additionally audited by the
/// exact oracle in tests.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace decycle::graph {

/// A generated instance together with its farness certificate.
struct FarInstance {
  Graph graph;
  std::vector<std::vector<Vertex>> planted;  ///< pairwise edge-disjoint k-cycles
  std::string description;

  /// The instance is ε-far from Ck-free for every ε < certified_epsilon():
  /// |planted| edge-disjoint cycles force |planted| deletions.
  [[nodiscard]] double certified_epsilon() const noexcept {
    return graph.num_edges() == 0
               ? 0.0
               : static_cast<double>(planted.size()) / static_cast<double>(graph.num_edges());
  }
};

struct PlantedOptions {
  unsigned k = 5;                   ///< cycle length
  std::size_t num_cycles = 10;      ///< c — planted vertex-disjoint k-cycles
  std::size_t padding_leaves = 0;   ///< acyclic padding edges (leaf hangs) to dilute ε
  bool connect = true;              ///< bridge everything into one component
  bool shuffle = true;              ///< random vertex relabeling
};

/// c vertex-disjoint k-cycles + leaf padding + bridges. The graph contains
/// exactly c k-cycles (bridges and leaf edges are cut edges), so the
/// certificate is tight: deletion distance == c.
[[nodiscard]] FarInstance planted_cycles_instance(const PlantedOptions& opt, util::Rng& rng);

struct NoisyFarOptions {
  unsigned k = 5;
  std::size_t num_cycles = 10;
  Vertex background_n = 200;       ///< vertices of the girth-(>k) background
  std::size_t background_m = 400;  ///< target background edges
};

/// Planted edge-disjoint k-cycles embedded in a random background of girth
/// > k. Background edges alone contain no Ck; cycles are planted on random
/// vertex tuples using only fresh edges, so they stay pairwise edge-disjoint
/// and the certificate |planted| holds even though planted/background edge
/// combinations may create additional k-cycles (which only adds farness).
[[nodiscard]] FarInstance noisy_far_instance(const NoisyFarOptions& opt, util::Rng& rng);

/// Dense layered instance: k layers of s vertices; for every shift
/// σ ∈ {0..shifts-1} and start i, the vertices L_j[(i + jσ) mod s] form a
/// k-cycle. All s·shifts cycles are pairwise edge-disjoint (requires
/// gcd(s, k-1) = 1, checked), every vertex lies on `shifts` planted cycles,
/// and degrees are 2·shifts. This is the Behrend-graph *substitute* (see
/// EXPERIMENTS.md): it reproduces the operative property — many edge-disjoint
/// k-cycles crossing at every vertex — that defeats the sampling techniques
/// of [20] for k >= 5.
[[nodiscard]] FarInstance layered_instance(unsigned k, Vertex layer_size, unsigned shifts,
                                           util::Rng& rng);

/// Random graph with girth strictly greater than \p k (hence Ck-free):
/// edges are added only between vertices at current distance >= k. May stop
/// short of m_target on dense requests.
[[nodiscard]] Graph high_girth_graph(Vertex n, std::size_t m_target, unsigned k, util::Rng& rng);

/// Ck-free families for the soundness experiments.
enum class CkFreeFamily {
  kForest,            ///< no cycles at all
  kBipartite,         ///< no odd cycles (valid for odd k)
  kHighGirth,         ///< girth > k
  kCliqueBlowup,      ///< disjoint K_{k-1} components + bridges: max cycle length k-1
  kSubdividedClique,  ///< K_m with edges subdivided t-fold, t chosen so t does not divide k
};

[[nodiscard]] const char* family_name(CkFreeFamily family) noexcept;

/// The families applicable for a given k (kBipartite only when k is odd).
[[nodiscard]] std::vector<CkFreeFamily> ck_free_families_for(unsigned k);

/// Builds an instance of the family with roughly \p n vertices.
[[nodiscard]] Graph ck_free_instance(CkFreeFamily family, unsigned k, Vertex n, util::Rng& rng);

}  // namespace decycle::graph
