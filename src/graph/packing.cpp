#include "graph/packing.hpp"

#include "util/check.hpp"

namespace decycle::graph {

Packing greedy_cycle_packing(const Graph& g, unsigned k) {
  Packing out;
  EdgeMask removed(g.num_edges(), 0);
  std::size_t alive = g.num_edges();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (removed[e]) continue;
    const auto [u, v] = g.edge(e);
    auto cycle = find_cycle_through_edge(g, k, u, v, &removed);
    if (!cycle) continue;
    DECYCLE_CHECK_MSG(validate_cycle(g, *cycle), "packing produced an invalid cycle");
    for (std::size_t i = 0; i < cycle->size(); ++i) {
      const Vertex a = (*cycle)[i];
      const Vertex b = (*cycle)[(i + 1) % cycle->size()];
      const EdgeId id = g.edge_id(a, b);
      DECYCLE_CHECK(id != kInvalidEdge);
      DECYCLE_CHECK_MSG(!removed[id], "cycle reused a removed edge");
      removed[id] = 1;
      --alive;
    }
    out.cycles.push_back(std::move(*cycle));
  }
  out.edges_remaining = alive;
  return out;
}

std::size_t greedy_deletion_upper_bound(const Graph& g, unsigned k) {
  // Remove one edge of some k-cycle until none remains. Each iteration
  // kills at least the found cycle, so this terminates in <= m steps.
  EdgeMask removed(g.num_edges(), 0);
  std::size_t deletions = 0;
  while (true) {
    auto cycle = find_cycle(g, k, &removed);
    if (!cycle) break;
    const EdgeId id = g.edge_id((*cycle)[0], (*cycle)[1]);
    DECYCLE_CHECK(id != kInvalidEdge);
    removed[id] = 1;
    ++deletions;
  }
  return deletions;
}

}  // namespace decycle::graph
