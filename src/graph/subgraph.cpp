#include "graph/subgraph.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/check.hpp"

namespace decycle::graph {

namespace {

constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

bool edge_alive(const Graph& g, const EdgeMask* removed, Vertex a, Vertex b) {
  if (removed == nullptr) return true;
  const EdgeId id = g.edge_id(a, b);
  return id == kInvalidEdge || !(*removed)[id];
}

/// BFS distances from \p src, capped at \p cap (vertices further away stay
/// kUnreached). Respects the removed-edge mask.
std::vector<std::uint32_t> bfs_capped(const Graph& g, Vertex src, std::uint32_t cap,
                                      const EdgeMask* removed) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreached);
  std::deque<Vertex> queue;
  dist[src] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const Vertex x = queue.front();
    queue.pop_front();
    if (dist[x] >= cap) continue;
    for (const Vertex y : g.neighbors(x)) {
      if (dist[y] != kUnreached) continue;
      if (!edge_alive(g, removed, x, y)) continue;
      dist[y] = dist[x] + 1;
      queue.push_back(y);
    }
  }
  return dist;
}

struct PathSearch {
  const Graph& g;
  unsigned k;
  Vertex target;
  const EdgeMask* removed;
  const std::vector<std::uint32_t>& dist_to_target;
  std::vector<Vertex> path;
  std::vector<char> on_path;

  /// Extends path (last vertex = path.back()) to reach target with exactly
  /// k vertices total. Returns true when found; path then holds the cycle.
  bool extend() {
    const Vertex x = path.back();
    const auto depth = static_cast<unsigned>(path.size());
    const unsigned remaining_edges = k - depth;  // edges still to traverse
    for (const Vertex y : g.neighbors(x)) {
      if (!edge_alive(g, removed, x, y)) continue;
      if (y == target) {
        if (remaining_edges == 1) {
          path.push_back(y);
          return true;
        }
        continue;  // reaching the target early would close a shorter cycle
      }
      if (on_path[y]) continue;
      if (dist_to_target[y] == kUnreached || dist_to_target[y] > remaining_edges - 1) continue;
      path.push_back(y);
      on_path[y] = 1;
      if (extend()) return true;
      on_path[y] = 0;
      path.pop_back();
    }
    return false;
  }
};

}  // namespace

std::optional<std::vector<Vertex>> find_cycle_through_edge(const Graph& g, unsigned k, Vertex u,
                                                           Vertex v, const EdgeMask* removed) {
  DECYCLE_CHECK_MSG(k >= 3, "cycles have length at least 3");
  if (u >= g.num_vertices() || v >= g.num_vertices()) return std::nullopt;
  if (!g.has_edge(u, v) || !edge_alive(g, removed, u, v)) return std::nullopt;

  // Need a simple path u -> v of exactly k-1 edges that avoids re-visiting u.
  const auto dist_v = bfs_capped(g, v, k - 1, removed);
  if (dist_v[u] == kUnreached) return std::nullopt;

  PathSearch search{g, k, v, removed, dist_v, {}, std::vector<char>(g.num_vertices(), 0)};
  search.path.reserve(k);
  search.path.push_back(u);
  search.on_path[u] = 1;
  // Mark v as allowed only as the terminal vertex: handled in extend().
  if (!search.extend()) return std::nullopt;
  return search.path;
}

bool has_cycle_through_edge(const Graph& g, unsigned k, Vertex u, Vertex v,
                            const EdgeMask* removed) {
  return find_cycle_through_edge(g, k, u, v, removed).has_value();
}

std::optional<std::vector<Vertex>> find_cycle(const Graph& g, unsigned k,
                                              const EdgeMask* removed) {
  for (const auto& [u, v] : g.edges()) {
    if (!edge_alive(g, removed, u, v)) continue;
    if (auto cycle = find_cycle_through_edge(g, k, u, v, removed)) return cycle;
  }
  return std::nullopt;
}

bool has_cycle(const Graph& g, unsigned k) { return find_cycle(g, k).has_value(); }

namespace {

/// Counts k-cycles whose minimum vertex is path[0], canonicalized so the
/// second vertex is smaller than the last (each cycle counted exactly once).
void count_from(const Graph& g, unsigned k, std::vector<Vertex>& path, std::vector<char>& on_path,
                std::uint64_t& total) {
  const Vertex start = path[0];
  const Vertex x = path.back();
  if (path.size() == k) {
    if (g.has_edge(x, start) && path[1] < path.back()) ++total;
    return;
  }
  for (const Vertex y : g.neighbors(x)) {
    if (y <= start || on_path[y]) continue;
    path.push_back(y);
    on_path[y] = 1;
    count_from(g, k, path, on_path, total);
    on_path[y] = 0;
    path.pop_back();
  }
}

}  // namespace

std::uint64_t count_cycles(const Graph& g, unsigned k) {
  DECYCLE_CHECK_MSG(k >= 3, "cycles have length at least 3");
  std::uint64_t total = 0;
  std::vector<char> on_path(g.num_vertices(), 0);
  std::vector<Vertex> path;
  path.reserve(k);
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    path.clear();
    path.push_back(s);
    on_path[s] = 1;
    count_from(g, k, path, on_path, total);
    on_path[s] = 0;
  }
  return total;
}

std::optional<unsigned> girth(const Graph& g) {
  unsigned best = std::numeric_limits<unsigned>::max();
  std::vector<std::uint32_t> dist(g.num_vertices());
  std::vector<Vertex> parent(g.num_vertices());
  std::deque<Vertex> queue;
  for (Vertex root = 0; root < g.num_vertices(); ++root) {
    std::fill(dist.begin(), dist.end(), kUnreached);
    queue.clear();
    dist[root] = 0;
    parent[root] = kInvalidVertex;
    queue.push_back(root);
    while (!queue.empty()) {
      const Vertex x = queue.front();
      queue.pop_front();
      if (2 * dist[x] + 1 >= best) break;  // deeper levels cannot improve
      for (const Vertex y : g.neighbors(x)) {
        if (dist[y] == kUnreached) {
          dist[y] = dist[x] + 1;
          parent[y] = x;
          queue.push_back(y);
        } else if (parent[x] != y) {
          // Non-tree edge: closed walk of length dist[x] + dist[y] + 1 through
          // the root; the minimum over all roots is exactly the girth.
          best = std::min(best, dist[x] + dist[y] + 1);
        }
      }
    }
  }
  if (best == std::numeric_limits<unsigned>::max()) return std::nullopt;
  return best;
}

bool validate_induced_cycle(const Graph& g, std::span<const Vertex> cycle) {
  if (!validate_cycle(g, cycle)) return false;
  const std::size_t k = cycle.size();
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = i + 2; j < k; ++j) {
      if (i == 0 && j == k - 1) continue;  // the closing edge, not a chord
      if (g.has_edge(cycle[i], cycle[j])) return false;
    }
  }
  return true;
}

namespace {

struct InducedSearch {
  const Graph& g;
  unsigned k;
  Vertex target;  // = v; path starts at u
  std::vector<Vertex> path;
  std::vector<char> on_path;

  /// Chordlessness while extending: the new vertex may touch only its
  /// predecessor among path vertices — except the very first vertex u, which
  /// the final vertex must reach via the closing edge (handled at the end).
  [[nodiscard]] bool extend() {
    const Vertex x = path.back();
    const auto depth = static_cast<unsigned>(path.size());
    for (const Vertex y : g.neighbors(x)) {
      if (y == target) {
        if (depth != k - 1) continue;  // reaching v early would chord the cycle
        // v must be non-adjacent to interior vertices (indices 1..k-3).
        bool chordless = true;
        for (std::size_t i = 1; i + 1 < path.size() && chordless; ++i) {
          if (g.has_edge(y, path[i])) chordless = false;
        }
        if (!chordless) continue;
        path.push_back(y);
        return true;
      }
      if (on_path[y] || depth >= k - 1) continue;
      // y may be adjacent only to x among path vertices (u included: an edge
      // y-u would chord the final cycle since y is interior).
      bool chordless = true;
      for (std::size_t i = 0; i + 1 < path.size() && chordless; ++i) {
        if (g.has_edge(y, path[i])) chordless = false;
      }
      if (!chordless) continue;
      path.push_back(y);
      on_path[y] = 1;
      if (extend()) return true;
      on_path[y] = 0;
      path.pop_back();
    }
    return false;
  }
};

}  // namespace

std::optional<std::vector<Vertex>> find_induced_cycle_through_edge(const Graph& g, unsigned k,
                                                                   Vertex u, Vertex v) {
  DECYCLE_CHECK_MSG(k >= 3, "cycles have length at least 3");
  if (u >= g.num_vertices() || v >= g.num_vertices()) return std::nullopt;
  if (!g.has_edge(u, v)) return std::nullopt;
  InducedSearch search{g, k, v, {}, std::vector<char>(g.num_vertices(), 0)};
  search.path.reserve(k);
  search.path.push_back(u);
  search.on_path[u] = 1;
  if (!search.extend()) return std::nullopt;
  DECYCLE_CHECK(validate_induced_cycle(g, search.path));
  return search.path;
}

std::optional<std::vector<Vertex>> find_induced_cycle(const Graph& g, unsigned k) {
  for (const auto& [u, v] : g.edges()) {
    if (auto cycle = find_induced_cycle_through_edge(g, k, u, v)) return cycle;
  }
  return std::nullopt;
}

bool has_induced_cycle(const Graph& g, unsigned k) { return find_induced_cycle(g, k).has_value(); }

bool validate_cycle(const Graph& g, std::span<const Vertex> cycle) {
  if (cycle.size() < 3) return false;
  std::vector<Vertex> sorted(cycle.begin(), cycle.end());
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) return false;
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const Vertex a = cycle[i];
    const Vertex b = cycle[(i + 1) % cycle.size()];
    if (!g.has_edge(a, b)) return false;
  }
  return true;
}

}  // namespace decycle::graph
