#include "graph/generators.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace decycle::graph {

Graph path(Vertex n) {
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph cycle(Vertex n) {
  DECYCLE_CHECK_MSG(n >= 3, "a cycle needs at least 3 vertices");
  GraphBuilder b(n);
  for (Vertex v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  b.add_edge(n - 1, 0);
  return b.build();
}

Graph complete(Vertex n) {
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) b.add_edge(u, v);
  return b.build();
}

Graph complete_bipartite(Vertex a, Vertex b) {
  GraphBuilder builder(a + b);
  for (Vertex u = 0; u < a; ++u)
    for (Vertex v = 0; v < b; ++v) builder.add_edge(u, a + v);
  return builder.build();
}

Graph star(Vertex n) {
  DECYCLE_CHECK_MSG(n >= 1, "star needs at least one vertex");
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph grid(Vertex rows, Vertex cols, bool wrap) {
  GraphBuilder b(rows * cols);
  const auto at = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) b.add_edge(at(r, c), at(r + 1, c));
      if (wrap && cols > 2 && c == cols - 1) b.add_edge(at(r, c), at(r, 0));
      if (wrap && rows > 2 && r == rows - 1) b.add_edge(at(r, c), at(0, c));
    }
  }
  return b.build();
}

Graph hypercube(unsigned d) {
  DECYCLE_CHECK_MSG(d < 25, "hypercube dimension too large");
  const Vertex n = Vertex{1} << d;
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) {
    for (unsigned bit = 0; bit < d; ++bit) {
      const Vertex w = v ^ (Vertex{1} << bit);
      if (v < w) b.add_edge(v, w);
    }
  }
  return b.build();
}

Graph lollipop(Vertex clique, Vertex tail) {
  DECYCLE_CHECK_MSG(clique >= 1, "lollipop needs a clique");
  GraphBuilder b(clique + tail);
  for (Vertex u = 0; u < clique; ++u)
    for (Vertex v = u + 1; v < clique; ++v) b.add_edge(u, v);
  Vertex prev = clique - 1;
  for (Vertex t = 0; t < tail; ++t) {
    b.add_edge(prev, clique + t);
    prev = clique + t;
  }
  return b.build();
}

Graph wheel(Vertex n) {
  DECYCLE_CHECK_MSG(n >= 4, "a wheel needs at least 4 vertices");
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) {
    b.add_edge(0, v);
    b.add_edge(v, v + 1 < n ? v + 1 : 1);
  }
  return b.build();
}

Graph barbell(Vertex clique, Vertex bridge) {
  DECYCLE_CHECK_MSG(clique >= 2, "barbell needs cliques of size >= 2");
  GraphBuilder b(2 * clique + bridge);
  for (Vertex u = 0; u < clique; ++u)
    for (Vertex v = u + 1; v < clique; ++v) b.add_edge(u, v);
  const Vertex right = clique + bridge;
  for (Vertex u = 0; u < clique; ++u)
    for (Vertex v = u + 1; v < clique; ++v) b.add_edge(right + u, right + v);
  Vertex prev = clique - 1;  // walk from left clique through the bridge path
  for (Vertex t = 0; t < bridge; ++t) {
    b.add_edge(prev, clique + t);
    prev = clique + t;
  }
  b.add_edge(prev, right);
  return b.build();
}

Graph caveman(Vertex caves, Vertex cave_size) {
  DECYCLE_CHECK_MSG(caves >= 3, "caveman ring needs at least 3 caves");
  DECYCLE_CHECK_MSG(cave_size >= 2, "caves need at least 2 vertices");
  GraphBuilder b(caves * cave_size);
  for (Vertex c = 0; c < caves; ++c) {
    const Vertex base = c * cave_size;
    for (Vertex u = 0; u < cave_size; ++u)
      for (Vertex v = u + 1; v < cave_size; ++v) b.add_edge(base + u, base + v);
    // Connect this cave's "exit" vertex to the next cave's "entry" vertex.
    const Vertex next_base = ((c + 1) % caves) * cave_size;
    b.add_edge(base + cave_size - 1, next_base);
  }
  return b.build();
}

Graph random_tree(Vertex n, util::Rng& rng) {
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) {
    const auto parent = static_cast<Vertex>(rng.next_below(v));
    b.add_edge(parent, v);
  }
  return b.build();
}

Graph erdos_renyi_gnm(Vertex n, std::size_t m, util::Rng& rng) {
  const std::uint64_t possible = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  DECYCLE_CHECK_MSG(m <= possible, "too many edges requested for G(n,m)");
  // Sample distinct edge indices in [0, n(n-1)/2), then decode. Decoding an
  // index i: row u is the largest with u*(n-1) - u*(u-1)/2 <= i (linear scan
  // avoided via direct arithmetic per sample).
  const auto indices = rng.sample_distinct(possible, m);
  GraphBuilder b(n);
  for (const std::uint64_t idx : indices) {
    // Find u such that offset(u) <= idx < offset(u+1), where
    // offset(u) = u*n - u*(u+1)/2 counts pairs with smaller endpoint < u.
    std::uint64_t lo = 0, hi = n;  // candidate u in [lo, hi)
    while (lo + 1 < hi) {
      const std::uint64_t mid = (lo + hi) / 2;
      const std::uint64_t offset = mid * n - mid * (mid + 1) / 2;
      if (offset <= idx) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    const std::uint64_t u = lo;
    const std::uint64_t offset = u * n - u * (u + 1) / 2;
    const std::uint64_t v = u + 1 + (idx - offset);
    b.add_edge(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  b.ensure_vertices(n);
  return b.build();
}

Graph erdos_renyi_gnp(Vertex n, double p, util::Rng& rng) {
  GraphBuilder b(n);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v)
      if (rng.next_bool(p)) b.add_edge(u, v);
  b.ensure_vertices(n);
  return b.build();
}

Graph random_regular(Vertex n, unsigned d, util::Rng& rng) {
  DECYCLE_CHECK_MSG(static_cast<std::uint64_t>(n) * d % 2 == 0, "n*d must be even");
  DECYCLE_CHECK_MSG(d < n, "degree must be below n");
  // Simplicity probability per attempt is roughly exp(-(d²-1)/4); for the
  // degrees used here that is a few percent, so thousands of attempts make
  // failure astronomically unlikely while staying cheap.
  for (int attempt = 0; attempt < 5000; ++attempt) {
    std::vector<Vertex> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (Vertex v = 0; v < n; ++v)
      for (unsigned i = 0; i < d; ++i) stubs.push_back(v);
    rng.shuffle(std::span<Vertex>(stubs));
    bool simple = true;
    std::unordered_set<std::pair<std::uint64_t, std::uint64_t>, util::PairHash> seen;
    GraphBuilder b(n);
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const Vertex a = stubs[i], c = stubs[i + 1];
      if (a == c) {
        simple = false;
        break;
      }
      const auto key = std::make_pair<std::uint64_t, std::uint64_t>(std::min(a, c), std::max(a, c));
      if (!seen.insert(key).second) {
        simple = false;
        break;
      }
      b.add_edge(a, c);
    }
    if (simple) return b.build();
  }
  DECYCLE_CHECK_MSG(false, "configuration model failed to produce a simple graph");
  return {};
}

Graph random_bipartite(Vertex a, Vertex b, std::size_t m, util::Rng& rng) {
  const std::uint64_t possible = static_cast<std::uint64_t>(a) * b;
  DECYCLE_CHECK_MSG(m <= possible, "too many edges requested for bipartite graph");
  const auto indices = rng.sample_distinct(possible, m);
  GraphBuilder builder(a + b);
  for (const std::uint64_t idx : indices) {
    const auto u = static_cast<Vertex>(idx / b);
    const auto v = static_cast<Vertex>(a + idx % b);
    builder.add_edge(u, v);
  }
  builder.ensure_vertices(a + b);
  return builder.build();
}

Graph random_connected(Vertex n, std::size_t m, util::Rng& rng) {
  DECYCLE_CHECK_MSG(n >= 1, "need at least one vertex");
  DECYCLE_CHECK_MSG(m + 1 >= n, "connected graph needs at least n-1 edges");
  GraphBuilder b(n);
  for (Vertex v = 1; v < n; ++v) {
    const auto parent = static_cast<Vertex>(rng.next_below(v));
    b.add_edge(parent, v);
  }
  std::unordered_set<std::pair<std::uint64_t, std::uint64_t>, util::PairHash> present;
  for (const auto& [x, y] : b.edges()) present.insert({x, y});
  std::size_t extra = m - (n - 1);
  std::size_t guard = 0;
  while (extra > 0) {
    DECYCLE_CHECK_MSG(++guard < 100 * m + 1000, "could not place extra edges (graph too dense?)");
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto v = static_cast<Vertex>(rng.next_below(n));
    if (u == v) continue;
    const auto key = std::make_pair<std::uint64_t, std::uint64_t>(std::min(u, v), std::max(u, v));
    if (!present.insert(key).second) continue;
    b.add_edge(u, v);
    --extra;
  }
  return b.build();
}

Graph circulant(Vertex n, std::uint32_t k, AdjacencyMode mode) {
  DECYCLE_CHECK_MSG(k >= 1, "circulant needs k >= 1");
  DECYCLE_CHECK_MSG(n >= 2 * std::uint64_t{k} + 1, "circulant requires n >= 2k+1");
  // Emit row by row, each row's partners ascending: direct offsets
  // u+1..u+k first, then (for u < k) the wrap partners u+n-k..n-1 — which
  // start above u+k because n > 2k. The stream is therefore strictly
  // lexicographic and feeds the sort-free CSR build.
  std::vector<Edge> edges;
  edges.reserve(std::size_t{n} * k);
  for (Vertex u = 0; u < n; ++u) {
    const auto direct_hi = static_cast<Vertex>(std::min<std::uint64_t>(n - 1, std::uint64_t{u} + k));
    for (Vertex v = u + 1; v <= direct_hi; ++v) edges.emplace_back(u, v);
    if (u < k) {
      for (Vertex v = static_cast<Vertex>(n - k + u); v < n; ++v) edges.emplace_back(u, v);
    }
  }
  return Graph::from_ordered_edges(n, std::move(edges), mode);
}

Graph connect_components(const Graph& g, std::span<const Vertex> part_reps) {
  GraphBuilder b(g.num_vertices());
  for (const auto& [u, v] : g.edges()) b.add_edge(u, v);
  for (std::size_t i = 0; i + 1 < part_reps.size(); ++i) {
    b.add_edge(part_reps[i], part_reps[i + 1]);
  }
  return b.build();
}

}  // namespace decycle::graph
