/// \file subgraph.hpp
/// \brief Exact (centralized) k-cycle search — the ground truth oracle.
///
/// Everything the distributed tester claims is checked against these
/// routines: the single-edge checker must agree with find_cycle_through_edge
/// on every edge (Lemma 2 is deterministic), every distributed rejection must
/// come with a witness that validate_cycle accepts, and generated Ck-free
/// families are audited with has_cycle / girth. The search is classic
/// backtracking DFS with admissible BFS-distance pruning — exponential in the
/// worst case, but exact, and fast on the instance sizes where it is used.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace decycle::graph {

/// Edges marked true are treated as absent (residual-graph searches for the
/// packing routine). Indexed by EdgeId; empty mask = full graph.
using EdgeMask = std::vector<char>;

/// Finds a k-cycle through edge {u,v}: k distinct vertices c0..c_{k-1} with
/// c0 = u, c_{k-1} = v, consecutive edges present, and the closing edge
/// {u,v} present. Returns std::nullopt when none exists. Deterministic
/// (neighbors scanned in sorted order).
[[nodiscard]] std::optional<std::vector<Vertex>> find_cycle_through_edge(
    const Graph& g, unsigned k, Vertex u, Vertex v, const EdgeMask* removed = nullptr);

[[nodiscard]] bool has_cycle_through_edge(const Graph& g, unsigned k, Vertex u, Vertex v,
                                          const EdgeMask* removed = nullptr);

/// Finds any k-cycle in the graph (first by edge order), or nullopt.
[[nodiscard]] std::optional<std::vector<Vertex>> find_cycle(const Graph& g, unsigned k,
                                                            const EdgeMask* removed = nullptr);

[[nodiscard]] bool has_cycle(const Graph& g, unsigned k);

/// Number of distinct Ck subgraphs (each cycle counted once, not per
/// orientation/rotation). Intended for small graphs (tests and examples).
[[nodiscard]] std::uint64_t count_cycles(const Graph& g, unsigned k);

/// Length of the shortest cycle, or nullopt for forests.
[[nodiscard]] std::optional<unsigned> girth(const Graph& g);

/// True iff \p cycle lists k >= 3 distinct vertices forming a cycle in g
/// (consecutive edges plus the closing edge all present).
[[nodiscard]] bool validate_cycle(const Graph& g, std::span<const Vertex> cycle);

/// True iff \p cycle is a cycle of g with NO chords: non-consecutive cycle
/// vertices are non-adjacent (the induced-subgraph condition of paper §4).
[[nodiscard]] bool validate_induced_cycle(const Graph& g, std::span<const Vertex> cycle);

/// Finds an INDUCED k-cycle through edge {u,v} (a chordless Ck — the
/// paper's conclusion discusses why Algorithm 1 cannot test for these).
/// Same contract as find_cycle_through_edge otherwise.
[[nodiscard]] std::optional<std::vector<Vertex>> find_induced_cycle_through_edge(const Graph& g,
                                                                                 unsigned k,
                                                                                 Vertex u,
                                                                                 Vertex v);

[[nodiscard]] std::optional<std::vector<Vertex>> find_induced_cycle(const Graph& g, unsigned k);

[[nodiscard]] bool has_induced_cycle(const Graph& g, unsigned k);

}  // namespace decycle::graph
