/// \file ids.hpp
/// \brief Node identity assignment, decoupled from network topology.
///
/// In the CONGEST model nodes carry arbitrary distinct IDs from a range
/// polynomial in n (paper §2.1), so every ID fits in O(log n) bits. The
/// algorithm's behaviour (edge ownership = smaller-ID endpoint, tie breaking)
/// depends on the ID assignment, so experiments run both the identity
/// assignment and adversarially shuffled / sparse random assignments.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace decycle::graph {

using NodeId = std::uint64_t;

class IdAssignment {
 public:
  /// vertex v gets ID v (the simplest legal assignment).
  [[nodiscard]] static IdAssignment identity(Vertex n);

  /// Distinct random IDs drawn from [0, n^2) — "range polynomial in n".
  [[nodiscard]] static IdAssignment random_quadratic(Vertex n, util::Rng& rng);

  /// Random permutation of 0..n-1 (dense but shuffled; stresses ownership
  /// and tie-breaking rules without growing ID bit-width).
  [[nodiscard]] static IdAssignment shuffled(Vertex n, util::Rng& rng);

  /// Explicit assignment; IDs must be distinct.
  [[nodiscard]] static IdAssignment from_ids(std::vector<NodeId> ids);

  [[nodiscard]] NodeId id_of(Vertex v) const noexcept { return ids_[v]; }
  [[nodiscard]] Vertex vertex_of(NodeId id) const;
  [[nodiscard]] bool has_id(NodeId id) const { return by_id_.contains(id); }
  [[nodiscard]] Vertex num_vertices() const noexcept { return static_cast<Vertex>(ids_.size()); }
  [[nodiscard]] NodeId max_id() const noexcept { return max_id_; }
  [[nodiscard]] const std::vector<NodeId>& ids() const noexcept { return ids_; }

 private:
  std::vector<NodeId> ids_;
  std::unordered_map<NodeId, Vertex> by_id_;
  NodeId max_id_ = 0;

  void index();
};

}  // namespace decycle::graph
