#include "graph/analysis.hpp"

#include <algorithm>
#include <deque>

namespace decycle::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex src, std::uint32_t cap) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::deque<Vertex> queue;
  dist[src] = 0;
  queue.push_back(src);
  while (!queue.empty()) {
    const Vertex x = queue.front();
    queue.pop_front();
    if (cap != 0 && dist[x] >= cap) continue;
    for (const Vertex y : g.neighbors(x)) {
      if (dist[y] != kUnreachable) continue;
      dist[y] = dist[x] + 1;
      queue.push_back(y);
    }
  }
  return dist;
}

Components connected_components(const Graph& g) {
  Components out;
  out.label.assign(g.num_vertices(), kUnreachable);
  std::deque<Vertex> queue;
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    if (out.label[s] != kUnreachable) continue;
    out.label[s] = out.count;
    queue.push_back(s);
    while (!queue.empty()) {
      const Vertex x = queue.front();
      queue.pop_front();
      for (const Vertex y : g.neighbors(x)) {
        if (out.label[y] != kUnreachable) continue;
        out.label[y] = out.count;
        queue.push_back(y);
      }
    }
    ++out.count;
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() <= 1) return true;
  return connected_components(g).count == 1;
}

std::optional<std::vector<char>> bipartition(const Graph& g) {
  std::vector<char> color(g.num_vertices(), -1);
  std::deque<Vertex> queue;
  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    if (color[s] != -1) continue;
    color[s] = 0;
    queue.push_back(s);
    while (!queue.empty()) {
      const Vertex x = queue.front();
      queue.pop_front();
      for (const Vertex y : g.neighbors(x)) {
        if (color[y] == -1) {
          color[y] = static_cast<char>(1 - color[x]);
          queue.push_back(y);
        } else if (color[y] == color[x]) {
          return std::nullopt;
        }
      }
    }
  }
  return color;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  if (g.num_vertices() == 0) return s;
  s.min = g.degree(0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const std::size_t d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
  }
  s.mean = 2.0 * static_cast<double>(g.num_edges()) / static_cast<double>(g.num_vertices());
  return s;
}

}  // namespace decycle::graph
