#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace decycle::graph {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& [u, v] : g.edges()) out << u << ' ' << v << '\n';
}

Graph read_edge_list(std::istream& in) {
  std::string line;
  auto next_data_line = [&](std::string& target) -> bool {
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      target = line;
      return true;
    }
    return false;
  };

  std::string header;
  DECYCLE_CHECK_MSG(next_data_line(header), "edge list: missing header line");
  std::istringstream hs(header);
  std::uint64_t n = 0, m = 0;
  DECYCLE_CHECK_MSG(static_cast<bool>(hs >> n >> m), "edge list: bad header");
  DECYCLE_CHECK_MSG(n <= kInvalidVertex, "edge list: too many vertices");

  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::uint64_t i = 0; i < m; ++i) {
    std::string data;
    DECYCLE_CHECK_MSG(next_data_line(data), "edge list: truncated file");
    std::istringstream es(data);
    std::uint64_t u = 0, v = 0;
    DECYCLE_CHECK_MSG(static_cast<bool>(es >> u >> v), "edge list: bad edge line");
    DECYCLE_CHECK_MSG(u < n && v < n, "edge list: endpoint out of range");
    edges.emplace_back(static_cast<Vertex>(u), static_cast<Vertex>(v));
  }
  return Graph::from_edges(static_cast<Vertex>(n), edges);
}

}  // namespace decycle::graph
