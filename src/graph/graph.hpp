/// \file graph.hpp
/// \brief Immutable simple undirected graph in CSR form.
///
/// The CONGEST network is a connected simple graph (paper §2.1). Vertices are
/// dense indices 0..n-1 (the simulator's unit of addressing); the *identities*
/// the algorithm reasons about are assigned separately (see ids.hpp), which
/// keeps "network topology" and "ID space" independent, exactly as the model
/// does.
///
/// Neighbor lists are sorted, so adjacency tests are O(log deg) and iteration
/// order is deterministic. Edges are canonicalized (u < v) and sorted
/// lexicographically; edge_id() gives each edge a stable dense index used for
/// rank assignment (Phase 1) and for edge-removal bitmaps (packing).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace decycle::graph {

using Vertex = std::uint32_t;
using Edge = std::pair<Vertex, Vertex>;  ///< canonical: first < second
using EdgeId = std::uint32_t;

inline constexpr Vertex kInvalidVertex = ~Vertex{0};
inline constexpr EdgeId kInvalidEdge = ~EdgeId{0};

class BitsetAdjacency;

/// Which membership structure backs has_edge. kAuto builds the compressed
/// sparse-bitset table when the graph is big and dense enough to profit
/// (n >= 65536 and average degree >= 8 — below that, binary search over the
/// neighbor array wins on footprint); kVector / kBitset force one side
/// (kBitset on any size, which the equivalence tests use). Neighbor spans
/// and port numbering are identical in every mode.
enum class AdjacencyMode : std::uint8_t { kAuto, kVector, kBitset };

class Graph {
 public:
  /// Builds a graph on \p n vertices from an arbitrary edge list.
  /// Self-loops are rejected; parallel edges are deduplicated (the model
  /// works on simple graphs). Endpoints must be < n.
  [[nodiscard]] static Graph from_edges(Vertex n, std::span<const Edge> edges,
                                        AdjacencyMode mode = AdjacencyMode::kAuto);

  /// Streaming build for generator-scale graphs: \p edges must already be
  /// canonical (u < v) and strictly lexicographically increasing — exactly
  /// what ordered emitters (circulant, grid rows) produce — so the CSR
  /// fills sorted in two passes with no sort and no dedup buffer. Takes the
  /// vector by value and keeps it as the edge list (no copy when moved in).
  [[nodiscard]] static Graph from_ordered_edges(Vertex n, std::vector<Edge> edges,
                                                AdjacencyMode mode = AdjacencyMode::kAuto);

  Graph() = default;

  [[nodiscard]] Vertex num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] std::size_t degree(Vertex v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }
  [[nodiscard]] std::size_t max_degree() const noexcept { return max_degree_; }

  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const noexcept;

  /// Canonical (u < v), lexicographically sorted edge list.
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  /// Dense index of edge {u,v} in edges(), or kInvalidEdge if absent.
  [[nodiscard]] EdgeId edge_id(Vertex u, Vertex v) const noexcept;

  [[nodiscard]] Edge edge(EdgeId id) const noexcept { return edges_[id]; }

  /// True when has_edge routes through the compressed bitset table.
  [[nodiscard]] bool uses_bitset() const noexcept { return bitset_ != nullptr; }
  /// The bitset table, or nullptr in vector mode. Detectors that want the
  /// word-merge kernels (intersection counting) read it directly.
  [[nodiscard]] const BitsetAdjacency* bitset() const noexcept { return bitset_.get(); }

 private:
  void finalize_adjacency(AdjacencyMode mode);

  Vertex n_ = 0;
  std::size_t max_degree_ = 0;
  std::vector<std::size_t> offsets_;  ///< n+1 entries
  std::vector<Vertex> adjacency_;     ///< 2m entries, sorted per vertex
  std::vector<Edge> edges_;           ///< m canonical edges, sorted
  /// Compressed membership table (see AdjacencyMode). shared_ptr keeps
  /// Graph cheaply copyable; the table is immutable once built.
  std::shared_ptr<const BitsetAdjacency> bitset_;
};

/// Incremental edge-list accumulator; the generators all funnel through this.
class GraphBuilder {
 public:
  explicit GraphBuilder(Vertex n = 0) : n_(n) {}

  /// Adds undirected edge {u,v}; grows the vertex count as needed.
  void add_edge(Vertex u, Vertex v);

  /// Ensures at least \p n vertices exist (isolated vertices allowed).
  void ensure_vertices(Vertex n) {
    if (n > n_) n_ = n;
  }

  [[nodiscard]] Vertex num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  [[nodiscard]] Graph build() const { return Graph::from_edges(n_, edges_); }

 private:
  Vertex n_ = 0;
  std::vector<Edge> edges_;
};

/// Disjoint union of graphs (vertex indices shifted); used to assemble
/// multi-component instances before optionally connecting them.
[[nodiscard]] Graph disjoint_union(std::span<const Graph> parts);

}  // namespace decycle::graph
