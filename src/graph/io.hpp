/// \file io.hpp
/// \brief Plain-text edge-list serialization.
///
/// Format: optional '#' comment lines, then a header "n m", then m lines
/// "u v". Used by the examples to exchange instances and by tests for
/// round-trip checks.
#pragma once

#include <iosfwd>

#include "graph/graph.hpp"

namespace decycle::graph {

void write_edge_list(std::ostream& out, const Graph& g);

/// Parses the format written by write_edge_list. Throws CheckError on
/// malformed input (wrong counts, out-of-range endpoints, self-loops).
[[nodiscard]] Graph read_edge_list(std::istream& in);

}  // namespace decycle::graph
