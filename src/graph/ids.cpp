#include "graph/ids.hpp"

#include <numeric>

#include "util/check.hpp"

namespace decycle::graph {

void IdAssignment::index() {
  by_id_.clear();
  by_id_.reserve(ids_.size() * 2);
  max_id_ = 0;
  for (Vertex v = 0; v < ids_.size(); ++v) {
    const auto [it, inserted] = by_id_.emplace(ids_[v], v);
    (void)it;
    DECYCLE_CHECK_MSG(inserted, "node IDs must be distinct");
    max_id_ = std::max(max_id_, ids_[v]);
  }
}

IdAssignment IdAssignment::identity(Vertex n) {
  IdAssignment a;
  a.ids_.resize(n);
  std::iota(a.ids_.begin(), a.ids_.end(), NodeId{0});
  a.index();
  return a;
}

IdAssignment IdAssignment::random_quadratic(Vertex n, util::Rng& rng) {
  IdAssignment a;
  const std::uint64_t universe = std::max<std::uint64_t>(4, static_cast<std::uint64_t>(n) * n);
  a.ids_ = rng.sample_distinct(universe, n);
  a.index();
  return a;
}

IdAssignment IdAssignment::shuffled(Vertex n, util::Rng& rng) {
  IdAssignment a;
  a.ids_.resize(n);
  std::iota(a.ids_.begin(), a.ids_.end(), NodeId{0});
  rng.shuffle(std::span<NodeId>(a.ids_));
  a.index();
  return a;
}

IdAssignment IdAssignment::from_ids(std::vector<NodeId> ids) {
  IdAssignment a;
  a.ids_ = std::move(ids);
  a.index();
  return a;
}

Vertex IdAssignment::vertex_of(NodeId id) const {
  const auto it = by_id_.find(id);
  DECYCLE_CHECK_MSG(it != by_id_.end(), "unknown node ID");
  return it->second;
}

}  // namespace decycle::graph
