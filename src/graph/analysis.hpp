/// \file analysis.hpp
/// \brief Structural graph queries shared by generators, tests and benches.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace decycle::graph {

inline constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();

/// BFS hop distances from \p src; kUnreachable for disconnected vertices.
/// \p cap (if non-zero) stops expansion beyond that distance.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g, Vertex src,
                                                       std::uint32_t cap = 0);

struct Components {
  std::vector<std::uint32_t> label;  ///< per-vertex component id
  std::uint32_t count = 0;
};

[[nodiscard]] Components connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// Two-colorability test; returns the coloring if bipartite.
[[nodiscard]] std::optional<std::vector<char>> bipartition(const Graph& g);

struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
};

[[nodiscard]] DegreeStats degree_stats(const Graph& g);

}  // namespace decycle::graph
