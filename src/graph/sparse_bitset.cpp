#include "graph/sparse_bitset.hpp"

#include <algorithm>
#include <bit>

namespace decycle::graph {

void SparseBitset::insert(std::uint32_t x) {
  const std::uint32_t w = x >> 6;
  const std::uint64_t mask = std::uint64_t{1} << (x & 63);
  if (!words_.empty() && words_.back() == w) {  // ascending-build fast path
    bits_.back() |= mask;
    return;
  }
  if (words_.empty() || w > words_.back()) {
    words_.push_back(w);
    bits_.push_back(mask);
    return;
  }
  const auto it = std::lower_bound(words_.begin(), words_.end(), w);
  const auto idx = static_cast<std::size_t>(it - words_.begin());
  if (it != words_.end() && *it == w) {
    bits_[idx] |= mask;
  } else {
    words_.insert(it, w);
    bits_.insert(bits_.begin() + static_cast<std::ptrdiff_t>(idx), mask);
  }
}

bool SparseBitset::test(std::uint32_t x) const noexcept {
  const std::uint32_t w = x >> 6;
  const auto it = std::lower_bound(words_.begin(), words_.end(), w);
  if (it == words_.end() || *it != w) return false;
  const auto idx = static_cast<std::size_t>(it - words_.begin());
  return (bits_[idx] >> (x & 63)) & 1;
}

std::size_t SparseBitset::count() const noexcept {
  std::size_t total = 0;
  for (const std::uint64_t b : bits_) total += static_cast<std::size_t>(std::popcount(b));
  return total;
}

std::size_t SparseBitset::intersect_count(const SparseBitset& other) const noexcept {
  std::size_t total = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < words_.size() && j < other.words_.size()) {
    if (words_[i] < other.words_[j]) {
      ++i;
    } else if (words_[i] > other.words_[j]) {
      ++j;
    } else {
      total += static_cast<std::size_t>(std::popcount(bits_[i] & other.bits_[j]));
      ++i;
      ++j;
    }
  }
  return total;
}

BitsetAdjacency BitsetAdjacency::build(std::uint32_t n, std::span<const std::size_t> offsets,
                                       std::span<const std::uint32_t> adjacency) {
  BitsetAdjacency adj;
  adj.offsets_.resize(static_cast<std::size_t>(n) + 1);
  adj.offsets_[0] = 0;
  // Pass 1: count occupied words per vertex (neighbors are sorted, so a
  // word change is a plain comparison with the previous neighbor).
  for (std::uint32_t u = 0; u < n; ++u) {
    std::size_t words = 0;
    std::uint32_t prev_word = ~std::uint32_t{0};
    for (std::size_t k = offsets[u]; k < offsets[u + 1]; ++k) {
      const std::uint32_t w = adjacency[k] >> 6;
      words += w != prev_word;
      prev_word = w;
    }
    adj.offsets_[u + 1] = adj.offsets_[u] + words;
  }
  adj.words_.resize(adj.offsets_[n]);
  adj.bits_.resize(adj.offsets_[n]);
  // Pass 2: emit (word, mask) runs.
  for (std::uint32_t u = 0; u < n; ++u) {
    std::size_t out = adj.offsets_[u];
    std::uint32_t prev_word = ~std::uint32_t{0};
    for (std::size_t k = offsets[u]; k < offsets[u + 1]; ++k) {
      const std::uint32_t v = adjacency[k];
      const std::uint32_t w = v >> 6;
      if (w != prev_word) {
        adj.words_[out] = w;
        adj.bits_[out] = 0;
        ++out;
        prev_word = w;
      }
      adj.bits_[out - 1] |= std::uint64_t{1} << (v & 63);
    }
  }
  return adj;
}

bool BitsetAdjacency::test(std::uint32_t u, std::uint32_t v) const noexcept {
  const std::uint32_t w = v >> 6;
  const auto begin = words_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]);
  const auto end = words_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]);
  const auto it = std::lower_bound(begin, end, w);
  if (it == end || *it != w) return false;
  const auto idx = static_cast<std::size_t>(it - words_.begin());
  return (bits_[idx] >> (v & 63)) & 1;
}

}  // namespace decycle::graph
