#include "graph/graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace decycle::graph {

Graph Graph::from_edges(Vertex n, std::span<const Edge> edges) {
  Graph g;
  g.n_ = n;

  std::vector<Edge> canon;
  canon.reserve(edges.size());
  for (const auto& [a, b] : edges) {
    DECYCLE_CHECK_MSG(a != b, "self-loops are not allowed in a simple graph");
    DECYCLE_CHECK_MSG(a < n && b < n, "edge endpoint out of range");
    canon.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
  g.edges_ = std::move(canon);

  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [a, b] : g.edges_) {
    ++g.offsets_[a + 1];
    ++g.offsets_[b + 1];
  }
  for (std::size_t v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];

  g.adjacency_.resize(2 * g.edges_.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [a, b] : g.edges_) {
    g.adjacency_[cursor[a]++] = b;
    g.adjacency_[cursor[b]++] = a;
  }
  for (Vertex v = 0; v < n; ++v) {
    auto nb = std::span<Vertex>(g.adjacency_.data() + g.offsets_[v],
                                g.adjacency_.data() + g.offsets_[v + 1]);
    std::sort(nb.begin(), nb.end());
    g.max_degree_ = std::max(g.max_degree_, nb.size());
  }
  return g;
}

bool Graph::has_edge(Vertex u, Vertex v) const noexcept {
  if (u >= n_ || v >= n_ || u == v) return false;
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

EdgeId Graph::edge_id(Vertex u, Vertex v) const noexcept {
  const Edge key{std::min(u, v), std::max(u, v)};
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), key);
  if (it == edges_.end() || *it != key) return kInvalidEdge;
  return static_cast<EdgeId>(it - edges_.begin());
}

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  DECYCLE_CHECK_MSG(u != v, "self-loops are not allowed in a simple graph");
  edges_.emplace_back(std::min(u, v), std::max(u, v));
  n_ = std::max(n_, static_cast<Vertex>(std::max(u, v) + 1));
}

Graph disjoint_union(std::span<const Graph> parts) {
  GraphBuilder builder;
  Vertex base = 0;
  for (const Graph& part : parts) {
    for (const auto& [a, b] : part.edges()) builder.add_edge(base + a, base + b);
    base += part.num_vertices();
    builder.ensure_vertices(base);
  }
  return builder.build();
}

}  // namespace decycle::graph
