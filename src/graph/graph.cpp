#include "graph/graph.hpp"

#include <algorithm>
#include <string>

#include "graph/sparse_bitset.hpp"
#include "util/check.hpp"

namespace decycle::graph {

namespace {

/// kAuto threshold: below this the bitset table costs more than it saves.
constexpr Vertex kBitsetAutoVertices = 1u << 16;
constexpr std::size_t kBitsetAutoAvgDegree = 8;

}  // namespace

void Graph::finalize_adjacency(AdjacencyMode mode) {
  for (Vertex v = 0; v < n_; ++v) {
    max_degree_ = std::max(max_degree_, offsets_[v + 1] - offsets_[v]);
  }
  const bool auto_bitset = n_ >= kBitsetAutoVertices &&
                           adjacency_.size() >= kBitsetAutoAvgDegree * std::size_t{n_};
  if (mode == AdjacencyMode::kBitset || (mode == AdjacencyMode::kAuto && auto_bitset)) {
    bitset_ = std::make_shared<const BitsetAdjacency>(
        BitsetAdjacency::build(n_, offsets_, adjacency_));
  }
}

Graph Graph::from_edges(Vertex n, std::span<const Edge> edges, AdjacencyMode mode) {
  Graph g;
  g.n_ = n;

  std::vector<Edge> canon;
  canon.reserve(edges.size());
  for (const auto& [a, b] : edges) {
    DECYCLE_CHECK_MSG(a != b, "self-loops are not allowed in a simple graph");
    DECYCLE_CHECK_MSG(a < n && b < n, "edge endpoint out of range");
    canon.emplace_back(std::min(a, b), std::max(a, b));
  }
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
  g.edges_ = std::move(canon);

  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const auto& [a, b] : g.edges_) {
    ++g.offsets_[a + 1];
    ++g.offsets_[b + 1];
  }
  for (std::size_t v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];

  g.adjacency_.resize(2 * g.edges_.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [a, b] : g.edges_) {
    g.adjacency_[cursor[a]++] = b;
    g.adjacency_[cursor[b]++] = a;
  }
  for (Vertex v = 0; v < n; ++v) {
    auto nb = std::span<Vertex>(g.adjacency_.data() + g.offsets_[v],
                                g.adjacency_.data() + g.offsets_[v + 1]);
    std::sort(nb.begin(), nb.end());
  }
  g.finalize_adjacency(mode);
  return g;
}

Graph Graph::from_ordered_edges(Vertex n, std::vector<Edge> edges, AdjacencyMode mode) {
  Graph g;
  g.n_ = n;

  // Pass 1: validate the ordering contract and count degrees. Strict
  // lexicographic increase subsumes dedup.
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  Edge prev{0, 0};
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const auto [a, b] = edges[i];
    // Each message names the offending edge index so a caller staring at a
    // million-edge stream knows where to look. The strings are built only on
    // failure (DECYCLE_CHECK_MSG evaluates msg in the failing branch).
    DECYCLE_CHECK_MSG(a < b, "from_ordered_edges: edge " + std::to_string(i) + " (" +
                                 std::to_string(a) + "," + std::to_string(b) +
                                 ") must be canonical (u < v)");
    DECYCLE_CHECK_MSG(b < n, "from_ordered_edges: edge " + std::to_string(i) + " (" +
                                 std::to_string(a) + "," + std::to_string(b) +
                                 ") endpoint out of range (n=" + std::to_string(n) + ")");
    DECYCLE_CHECK_MSG(i == 0 || (Edge{a, b} > prev),
                      "from_ordered_edges: edge " + std::to_string(i) + " (" +
                          std::to_string(a) + "," + std::to_string(b) +
                          ") must strictly increase lexicographically (duplicate or unsorted; "
                          "previous (" +
                          std::to_string(prev.first) + "," + std::to_string(prev.second) + "))");
    prev = {a, b};
    ++g.offsets_[a + 1];
    ++g.offsets_[b + 1];
  }
  for (std::size_t v = 0; v < n; ++v) g.offsets_[v + 1] += g.offsets_[v];

  // Pass 2: cursor fill. Visiting edges in lexicographic order appends each
  // vertex's partners in ascending order on both sides — for fixed u the
  // seconds ascend, and for fixed v the firsts ascend across the stream —
  // so the adjacency is born sorted and needs no per-vertex sort.
  g.adjacency_.resize(2 * edges.size());
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [a, b] : edges) {
    g.adjacency_[cursor[a]++] = b;
    g.adjacency_[cursor[b]++] = a;
  }
  g.edges_ = std::move(edges);
  g.finalize_adjacency(mode);
  return g;
}

bool Graph::has_edge(Vertex u, Vertex v) const noexcept {
  if (u >= n_ || v >= n_ || u == v) return false;
  if (bitset_ != nullptr) return bitset_->test(u, v);
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

EdgeId Graph::edge_id(Vertex u, Vertex v) const noexcept {
  const Edge key{std::min(u, v), std::max(u, v)};
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), key);
  if (it == edges_.end() || *it != key) return kInvalidEdge;
  return static_cast<EdgeId>(it - edges_.begin());
}

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  DECYCLE_CHECK_MSG(u != v, "self-loops are not allowed in a simple graph");
  edges_.emplace_back(std::min(u, v), std::max(u, v));
  n_ = std::max(n_, static_cast<Vertex>(std::max(u, v) + 1));
}

Graph disjoint_union(std::span<const Graph> parts) {
  GraphBuilder builder;
  Vertex base = 0;
  for (const Graph& part : parts) {
    for (const auto& [a, b] : part.edges()) builder.add_edge(base + a, base + b);
    base += part.num_vertices();
    builder.ensure_vertices(base);
  }
  return builder.build();
}

}  // namespace decycle::graph
