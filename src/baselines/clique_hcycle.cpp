#include "baselines/clique_hcycle.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "graph/subgraph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::baselines {

namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::MessageReader;
using congest::MessageWriter;
using graph::Vertex;

constexpr std::uint64_t kTagRow = 1;       ///< member -> collector: my adjacency row
constexpr std::uint64_t kTagContinue = 2;  ///< collector -> all: phase p starts, joiners report
constexpr std::uint64_t kTagFound = 3;     ///< collector -> all: witness cycle, stop

/// Everything the run fixes up front, shared read-only by all n programs.
/// The rank permutation and phase-size table derive from the seed alone, so
/// in the real model every node computes them locally from the shared seed;
/// here they are materialized once. The input-graph pointer stands in for
/// each node's knowledge of its OWN incident input edges (node v only ever
/// reads input->neighbors(v)) — the standard simulation shortcut for "the
/// input graph is distributed edge-wise over the clique".
struct SharedConfig {
  unsigned k = 0;
  const graph::Graph* input = nullptr;
  std::vector<std::uint32_t> rank;   ///< rank[v] = v's position in the sample order
  std::vector<std::uint32_t> sizes;  ///< |S_p| per phase; strictly doubling, last == n
};

/// One program class for both roles; vertex 0 is the collector. The clique
/// comm graph makes the port arithmetic trivial: the collector's port p is
/// vertex p+1, and vertex 0 is port 0 of every other node (neighbor lists
/// are sorted ascending).
class CliqueHCycleProgram final : public congest::NodeProgram {
 public:
  explicit CliqueHCycleProgram(std::shared_ptr<const SharedConfig> cfg) : cfg_(std::move(cfg)) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    if (ctx.vertex() == 0) {
      collector_round(ctx, inbox);
    } else {
      member_round(ctx, inbox);
    }
  }

  // --- post-run surface (read by the driver) -----------------------------
  [[nodiscard]] bool found() const noexcept { return found_; }
  [[nodiscard]] const std::vector<Vertex>& witness() const noexcept { return witness_; }
  [[nodiscard]] std::uint64_t phases_run() const noexcept { return phases_run_; }
  [[nodiscard]] std::uint64_t sampled_vertices() const noexcept { return sampled_vertices_; }
  [[nodiscard]] std::uint64_t sampled_edges() const noexcept { return sampled_edges_; }
  [[nodiscard]] std::optional<std::uint64_t> exit_phase() const noexcept { return exit_phase_; }

 private:
  void member_round(Context& ctx, std::span<const Envelope> inbox) {
    for (const Envelope& env : inbox) {
      MessageReader r(env.payload);
      const std::uint64_t tag = r.get_u64();
      if (tag == kTagFound) {
        found_ = true;
        witness_.clear();
        const std::uint64_t len = r.get_u64();
        for (std::uint64_t i = 0; i < len; ++i) {
          witness_.push_back(static_cast<Vertex>(r.get_u64()));
        }
      } else if (tag == kTagContinue) {
        const auto phase = static_cast<std::size_t>(r.get_u64());
        const std::uint32_t lo = cfg_->sizes[phase - 1];
        const std::uint32_t hi = cfg_->sizes[phase];
        const std::uint32_t mine = cfg_->rank[ctx.vertex()];
        if (mine >= lo && mine < hi) send_row(ctx);
      }
    }
    // Round 0: every node runs once; the initial sample reports unprompted.
    if (ctx.round() == 0 && cfg_->rank[ctx.vertex()] < cfg_->sizes[0]) send_row(ctx);
  }

  void send_row(Context& ctx) {
    MessageWriter w;
    w.put_u64(kTagRow);
    for (const Vertex u : cfg_->input->neighbors(ctx.vertex())) w.put_u64(u);
    ctx.send(0, w.finish());  // the collector is port 0 of every member
  }

  void collector_round(Context& ctx, std::span<const Envelope> inbox) {
    if (ctx.round() == 0) {
      ctx.request_wakeup_at(1);  // process phase 0 even if every row drops
      if (ctx.degree() == 0) process(ctx);  // n == 1: no mail will ever arrive
      return;
    }
    if (done_) return;
    // Fold freshly arrived rows into the accumulated edge pool. The sender
    // vertex is the collector's port + 1; rows list INPUT-graph neighbors.
    for (const Envelope& env : inbox) {
      const Vertex from = env.port + 1;
      MessageReader r(env.payload);
      if (r.get_u64() != kTagRow) continue;  // protocol: members never send else
      while (!r.at_end()) {
        const auto u = static_cast<Vertex>(r.get_u64());
        edges_.emplace_back(std::min(from, u), std::max(from, u));
      }
    }
    if (ctx.round() == 2 * phase_ + 1) process(ctx);
  }

  /// Runs the phase_ search over the accumulated rows and either exits
  /// (found / sample exhausted) or launches the next doubling.
  void process(Context& ctx) {
    const std::uint32_t s = cfg_->sizes[phase_];
    if (!own_row_added_ && cfg_->rank[0] < s) {
      own_row_added_ = true;
      for (const Vertex u : cfg_->input->neighbors(0)) {
        edges_.emplace_back(std::min<Vertex>(0, u), std::max<Vertex>(0, u));
      }
    }
    // Induced restriction to S_p: both endpoints sampled. from_edges dedups
    // the two-endpoint double reports.
    std::vector<graph::Edge> in_sample;
    for (const graph::Edge& e : edges_) {
      if (cfg_->rank[e.first] < s && cfg_->rank[e.second] < s) in_sample.push_back(e);
    }
    const graph::Graph sub =
        graph::Graph::from_edges(cfg_->input->num_vertices(), in_sample);
    ++phases_run_;
    sampled_vertices_ = s;
    sampled_edges_ = sub.num_edges();

    if (auto cycle = graph::find_cycle(sub, cfg_->k)) {
      found_ = true;
      witness_ = std::move(*cycle);
      exit_phase_ = phase_;
      done_ = true;
      MessageWriter w;
      w.put_u64(kTagFound);
      w.put_u64(witness_.size());
      for (const Vertex v : witness_) w.put_u64(v);
      ctx.send_all(w.finish());
      return;
    }
    if (s >= cfg_->input->num_vertices()) {
      done_ = true;  // whole graph collected and C_k-free: accept, quiesce
      return;
    }
    ++phase_;
    MessageWriter w;
    w.put_u64(kTagContinue);
    w.put_u64(phase_);
    ctx.send_all(w.finish());
    // Progress even if every continue (hence every row) is dropped.
    ctx.request_wakeup_at(2 * phase_ + 1);
  }

  std::shared_ptr<const SharedConfig> cfg_;

  // Collector state.
  std::vector<graph::Edge> edges_;  ///< canonical, possibly duplicated; rank-filtered per phase
  std::uint64_t phase_ = 0;
  bool own_row_added_ = false;
  bool done_ = false;
  std::uint64_t phases_run_ = 0;
  std::uint64_t sampled_vertices_ = 0;
  std::uint64_t sampled_edges_ = 0;
  std::optional<std::uint64_t> exit_phase_;

  // Both roles.
  bool found_ = false;
  std::vector<Vertex> witness_;
};

}  // namespace

CliqueHCycleVerdict detect_hcycle_clique(const graph::Graph& g, const graph::IdAssignment& ids,
                                         const CliqueHCycleOptions& options) {
  congest::Simulator sim(g, ids, congest::CommModel::clique());
  return detect_hcycle_clique(sim, options);
}

CliqueHCycleVerdict detect_hcycle_clique(congest::Simulator& sim,
                                         const CliqueHCycleOptions& options) {
  DECYCLE_CHECK_MSG(sim.model().kind() == congest::CommModelKind::kClique,
                    std::string("clique_hcycle runs on the Congested Clique only; this "
                                "simulator was built with model '") +
                        std::string(sim.model().name()) +
                        "' (construct it with CommModel::clique())");
  DECYCLE_CHECK_MSG(options.k >= 3, "clique_hcycle: k must be at least 3");
  const graph::Graph& g = sim.graph();
  const Vertex n = g.num_vertices();

  CliqueHCycleVerdict verdict;
  if (n == 0) return verdict;

  auto cfg = std::make_shared<SharedConfig>();
  cfg->k = options.k;
  cfg->input = &g;
  util::Rng rng(options.seed);
  const std::vector<std::uint32_t> order = rng.permutation(n);
  cfg->rank.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) cfg->rank[order[i]] = i;
  std::uint64_t s = std::min<std::uint64_t>(n, std::max<std::size_t>(1, options.initial_sample));
  for (;;) {
    cfg->sizes.push_back(static_cast<std::uint32_t>(s));
    if (s >= n) break;
    s = std::min<std::uint64_t>(n, 2 * s);
  }

  sim.reset([&cfg](Vertex) { return std::make_unique<CliqueHCycleProgram>(cfg); });
  congest::Simulator::Options sim_options;
  sim_options.max_rounds = 2 * cfg->sizes.size() + 4;
  sim_options.pool = options.pool;
  sim_options.drop = options.drop;
  sim_options.delivery = options.delivery;
  verdict.stats = sim.run(sim_options);

  const auto& collector = static_cast<const CliqueHCycleProgram&>(sim.program(0));
  verdict.phases = collector.phases_run();
  verdict.sampled_vertices = collector.sampled_vertices();
  verdict.sampled_edges = collector.sampled_edges();
  if (collector.found()) {
    verdict.witness = collector.witness();
    if (options.validate_witnesses) {
      DECYCLE_CHECK_MSG(graph::validate_cycle(g, verdict.witness),
                        "clique_hcycle produced an invalid witness cycle");
      DECYCLE_CHECK_MSG(verdict.witness.size() == options.k,
                        "clique_hcycle witness has the wrong length");
    }
    const std::uint64_t last_phase = cfg->sizes.size() - 1;
    const std::uint64_t exit_phase = *collector.exit_phase();
    verdict.early_exit = exit_phase < last_phase;
    verdict.rounds_saved = 2 * (last_phase - exit_phase);
  }
  sim.for_each_program<CliqueHCycleProgram>([&](Vertex, const CliqueHCycleProgram& prog) {
    if (!prog.found()) return;
    verdict.accepted = false;
    verdict.rejecting_nodes += 1;
  });
  return verdict;
}

}  // namespace decycle::baselines
