/// \file c4_tester.hpp
/// \brief C4-freeness tester in the style of Fraigniaud, Rapaport, Salo and
/// Todinca (DISC 2016) — reference [20].
///
/// A C4 is two "cherries" (paths a-v-b and a-w-b) on the same endpoint pair
/// {a, b}. Per iteration (1 CONGEST round): every node with degree >= 2
/// picks a random pair of neighbors {a, b} and reports it to the smaller-ID
/// endpoint (which is adjacent, being a chosen neighbor). A node receiving
/// the same pair from two distinct senders v, w has found the C4 (v,a,w,b).
/// O(1/ε²) iterations on ε-far instances, per [20].
///
/// This baseline exists for experiment B1: the paper's algorithm at k=4
/// versus the specialized tester whose technique provably fails for k >= 5.
#pragma once

#include <cstdint>

#include "congest/simulator.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"

namespace decycle::baselines {

struct C4TesterOptions {
  std::size_t iterations = 64;
  std::uint64_t seed = 1;
  bool validate_witnesses = true;
  congest::Simulator::DropFilter drop;  ///< optional message-loss adversary
  congest::DeliveryMode delivery = congest::DeliveryMode::kArena;
};

struct C4Verdict {
  bool accepted = true;
  std::size_t rejecting_nodes = 0;
  std::vector<graph::Vertex> witness;  ///< a validated C4 when rejected
  congest::RunStats stats;
};

[[nodiscard]] C4Verdict test_c4_freeness_frst(const graph::Graph& g,
                                              const graph::IdAssignment& ids,
                                              const C4TesterOptions& options);

/// Same, but on an existing Simulator for the topology (reset + run — the
/// reuse contract: bit-identical to the fresh-build overload). This is how
/// the detector registry drives the baseline from reused lab lanes.
[[nodiscard]] C4Verdict test_c4_freeness_frst(congest::Simulator& sim,
                                              const C4TesterOptions& options);

}  // namespace decycle::baselines
