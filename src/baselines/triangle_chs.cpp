#include "baselines/triangle_chs.hpp"

#include <algorithm>
#include <array>
#include <memory>
#include <optional>

#include "core/witness.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::baselines {

namespace {

using congest::Context;
using congest::Envelope;
using congest::Message;
using congest::MessageReader;
using congest::MessageWriter;
using graph::NodeId;

constexpr std::uint64_t kTagQuery = 1;

/// Two rounds per iteration: even rounds send queries, odd rounds answer
/// them locally (the answerer knows its neighbor IDs, so detection happens
/// at the answerer without a reply round).
class TriangleProgram final : public congest::NodeProgram {
 public:
  TriangleProgram(std::size_t iterations, std::uint64_t seed, NodeId my_id)
      : iterations_(iterations), seed_(seed), my_id_(my_id) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    const std::uint64_t iter = ctx.round();
    // Answer incoming queries: "are you adjacent to b?" — check the local
    // neighbor table; a hit exposes the triangle (sender, me, b).
    for (const Envelope& env : inbox) {
      MessageReader r(env.payload);
      const std::uint64_t tag = r.get_u64();
      DECYCLE_CHECK(tag == kTagQuery);
      const NodeId b = r.get_u64();
      if (!triangle_ && is_neighbor(ctx, b)) {
        triangle_ = {r_sender(ctx, env.port), my_id_, b};
      }
    }
    if (iter >= iterations_) return;

    if (ctx.degree() >= 2) {
      util::Rng rng = util::Rng(seed_).fork(iter).fork(my_id_);
      const auto pick = rng.sample_distinct(ctx.degree(), 2);
      const auto port_a = static_cast<std::uint32_t>(pick[0]);
      const auto port_b = static_cast<std::uint32_t>(pick[1]);
      MessageWriter w;
      w.put_u64(kTagQuery);
      w.put_u64(ctx.neighbor_id(port_b));
      ctx.send(port_a, w.finish());
    }
    ctx.request_wakeup_at(iter + 1);
  }

  [[nodiscard]] const std::optional<std::array<NodeId, 3>>& triangle() const noexcept {
    return triangle_;
  }

 private:
  [[nodiscard]] static bool is_neighbor_id(Context& ctx, NodeId id) {
    for (std::uint32_t p = 0; p < ctx.degree(); ++p) {
      if (ctx.neighbor_id(p) == id) return true;
    }
    return false;
  }
  [[nodiscard]] bool is_neighbor(Context& ctx, NodeId id) const { return is_neighbor_id(ctx, id); }
  [[nodiscard]] static NodeId r_sender(Context& ctx, std::uint32_t port) {
    return ctx.neighbor_id(port);
  }

  std::size_t iterations_;
  std::uint64_t seed_;
  NodeId my_id_;
  std::optional<std::array<NodeId, 3>> triangle_;
};

}  // namespace

TriangleVerdict test_triangle_freeness_chs(const graph::Graph& g, const graph::IdAssignment& ids,
                                           const TriangleTesterOptions& options) {
  congest::Simulator sim(g, ids);
  return test_triangle_freeness_chs(sim, options);
}

TriangleVerdict test_triangle_freeness_chs(congest::Simulator& sim,
                                           const TriangleTesterOptions& options) {
  const graph::Graph& g = sim.graph();
  const graph::IdAssignment& ids = sim.ids();
  sim.reset([&](graph::Vertex v) {
    return std::make_unique<TriangleProgram>(options.iterations, options.seed, ids.id_of(v));
  });
  congest::Simulator::Options sim_options;
  sim_options.max_rounds = options.iterations + 2;
  sim_options.drop = options.drop;
  sim_options.delivery = options.delivery;
  TriangleVerdict verdict;
  verdict.stats = sim.run(sim_options);

  sim.for_each_program<TriangleProgram>([&](graph::Vertex vert, const TriangleProgram& prog) {
    (void)vert;
    if (!prog.triangle()) return;
    verdict.accepted = false;
    verdict.rejecting_nodes += 1;
    if (verdict.witness.empty()) {
      const auto& tri = *prog.triangle();
      if (options.validate_witnesses) {
        verdict.witness = core::validated_witness_vertices(g, ids, std::span(tri.data(), 3));
      } else {
        for (const NodeId id : tri) verdict.witness.push_back(ids.vertex_of(id));
      }
    }
  });
  return verdict;
}

}  // namespace decycle::baselines
