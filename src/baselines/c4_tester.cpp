#include "baselines/c4_tester.hpp"

#include <array>
#include <memory>
#include <optional>
#include <utility>

#include "core/witness.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace decycle::baselines {

namespace {

using congest::Context;
using congest::Envelope;
using congest::MessageReader;
using congest::MessageWriter;
using graph::NodeId;

constexpr std::uint64_t kTagCherry = 1;

class C4Program final : public congest::NodeProgram {
 public:
  C4Program(std::size_t iterations, std::uint64_t seed, NodeId my_id)
      : iterations_(iterations), seed_(seed), my_id_(my_id) {}

  void on_round(Context& ctx, std::span<const Envelope> inbox) override {
    // Two distinct senders reporting the same partner close a 4-cycle
    // through this node (reports name the pair {a,b} with a = this node).
    // Inboxes hold at most one report per neighbor, so the pairwise scan is
    // O(d²) with tiny constants.
    if (!c4_) check_all_pairs(ctx, inbox);

    const std::uint64_t iter = ctx.round();
    if (iter >= iterations_) return;
    if (ctx.degree() >= 2) {
      util::Rng rng = util::Rng(seed_).fork(iter).fork(my_id_);
      const auto pick = rng.sample_distinct(ctx.degree(), 2);
      auto port_a = static_cast<std::uint32_t>(pick[0]);
      auto port_b = static_cast<std::uint32_t>(pick[1]);
      // Report to the smaller-ID endpoint of the pair.
      if (ctx.neighbor_id(port_a) > ctx.neighbor_id(port_b)) std::swap(port_a, port_b);
      MessageWriter w;
      w.put_u64(kTagCherry);
      w.put_u64(ctx.neighbor_id(port_b));  // the other endpoint of the cherry
      ctx.send(port_a, w.finish());
    }
    ctx.request_wakeup_at(iter + 1);
  }

  [[nodiscard]] const std::optional<std::array<NodeId, 4>>& c4() const noexcept { return c4_; }

 private:
  void check_all_pairs(Context& ctx, std::span<const Envelope> inbox) {
    for (std::size_t i = 0; i < inbox.size() && !c4_; ++i) {
      for (std::size_t j = i + 1; j < inbox.size() && !c4_; ++j) {
        MessageReader ri(inbox[i].payload);
        MessageReader rj(inbox[j].payload);
        (void)ri.get_u64();
        (void)rj.get_u64();
        const NodeId pi = ri.get_u64();
        const NodeId pj = rj.get_u64();
        const NodeId si = ctx.neighbor_id(inbox[i].port);
        const NodeId sj = ctx.neighbor_id(inbox[j].port);
        if (pi == pj && si != sj) c4_ = {si, my_id_, sj, pi};
      }
    }
  }

  std::size_t iterations_;
  std::uint64_t seed_;
  NodeId my_id_;
  std::optional<std::array<NodeId, 4>> c4_;
};

}  // namespace

C4Verdict test_c4_freeness_frst(const graph::Graph& g, const graph::IdAssignment& ids,
                                const C4TesterOptions& options) {
  congest::Simulator sim(g, ids);
  return test_c4_freeness_frst(sim, options);
}

C4Verdict test_c4_freeness_frst(congest::Simulator& sim, const C4TesterOptions& options) {
  const graph::Graph& g = sim.graph();
  const graph::IdAssignment& ids = sim.ids();
  sim.reset([&](graph::Vertex v) {
    return std::make_unique<C4Program>(options.iterations, options.seed, ids.id_of(v));
  });
  congest::Simulator::Options sim_options;
  sim_options.max_rounds = options.iterations + 2;
  sim_options.drop = options.drop;
  sim_options.delivery = options.delivery;
  C4Verdict verdict;
  verdict.stats = sim.run(sim_options);

  sim.for_each_program<C4Program>([&](graph::Vertex vert, const C4Program& prog) {
    (void)vert;
    if (!prog.c4()) return;
    verdict.accepted = false;
    verdict.rejecting_nodes += 1;
    if (verdict.witness.empty()) {
      const auto& cyc = *prog.c4();
      if (options.validate_witnesses) {
        verdict.witness = core::validated_witness_vertices(g, ids, std::span(cyc.data(), 4));
      } else {
        for (const NodeId id : cyc) verdict.witness.push_back(ids.vertex_of(id));
      }
    }
  });
  return verdict;
}

}  // namespace decycle::baselines
