/// \file triangle_chs.hpp
/// \brief Triangle (C3) freeness tester in the style of Censor-Hillel,
/// Fischer, Schwartzman and Vasudev (DISC 2016) — reference [7].
///
/// Per iteration (2 CONGEST rounds): every node with degree >= 2 picks two
/// random neighbors a, b and asks a whether b is adjacent to it; a answers
/// from its neighbor table (KT1). A "yes" exposes the triangle (v, a, b).
/// On graphs ε-far from triangle-freeness there are >= εm/3 edge-disjoint
/// triangles (Lemma 4), and a triangle (v,a,b) is found by v with
/// probability >= 2/deg(v)², giving the O(1/ε²)-round behaviour of [7].
///
/// This baseline exists for experiment B1: the paper's algorithm at k=3
/// versus the specialized tester it generalizes.
#pragma once

#include <cstdint>

#include "congest/simulator.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "util/rng.hpp"

namespace decycle::baselines {

struct TriangleTesterOptions {
  std::size_t iterations = 64;
  std::uint64_t seed = 1;
  bool validate_witnesses = true;
  congest::Simulator::DropFilter drop;  ///< optional message-loss adversary
  congest::DeliveryMode delivery = congest::DeliveryMode::kArena;
};

struct TriangleVerdict {
  bool accepted = true;
  std::size_t rejecting_nodes = 0;
  std::vector<graph::Vertex> witness;  ///< a validated triangle when rejected
  congest::RunStats stats;
};

[[nodiscard]] TriangleVerdict test_triangle_freeness_chs(const graph::Graph& g,
                                                         const graph::IdAssignment& ids,
                                                         const TriangleTesterOptions& options);

/// Same, but on an existing Simulator for the topology (reset + run — the
/// reuse contract: bit-identical to the fresh-build overload). This is how
/// the detector registry drives the baseline from reused lab lanes.
[[nodiscard]] TriangleVerdict test_triangle_freeness_chs(congest::Simulator& sim,
                                                         const TriangleTesterOptions& options);

}  // namespace decycle::baselines
