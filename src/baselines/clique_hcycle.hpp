/// \file clique_hcycle.hpp
/// \brief Cycle-count-adaptive h-cycle detection in the Congested Clique,
/// after Censor-Hillel, Even and Vassilevska Williams (arXiv 2408.15132).
///
/// The headline property of that paper is that h-cycle detection in the
/// Congested Clique gets FASTER the more h-cycles the input contains: a
/// small random vertex sample already induces a copy of C_h when copies
/// abound, so an algorithm that examines doubling samples exits early on
/// cycle-rich inputs and only pays for the full graph when cycles are rare
/// or absent. This file implements that schedule as a leader-coordinated
/// protocol on the simulator's CliqueModel:
///
///   * A shared seed orders the vertices by a random permutation rank;
///     phase p samples S_p = the min(n, s0·2^p) lowest-ranked vertices
///     (samples are nested, so a vertex reports once, ever).
///   * Phase p, round 2p: the vertices that just joined S_p send their
///     input-graph adjacency row to the collector (vertex 0) over their
///     direct clique link. Round 2p+1: the collector folds the new rows
///     into its accumulated S_p-induced subgraph and runs the exact
///     C_k search on it.
///   * Found: the collector broadcasts the witness to all n-1 peers and the
///     network quiesces — an early exit whose saved rounds scale with how
///     soon a sample contained a cycle. Not found and S_p == V: quiesce
///     accepting. Otherwise: broadcast "continue", which tells the next
///     doubling's joiners to report.
///
/// The final phase collects the entire graph, so a drop-free run is EXACT:
/// accept iff the DFS oracle finds no C_k (the soak differential pins this
/// via exact_when_lossless). Message drops only lose rows or continues —
/// detections are lost, never fabricated (1-sided error preserved).
///
/// Bandwidth honesty: rows are whole adjacency lists in one message, i.e.
/// this is the O(1)-round Congested Clique idiom (Lenzen routing compressed
/// into one logical round); RunStats' bit totals account the real traffic,
/// which is how the bench demonstrates the cycle-count adaptivity.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/simulator.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "util/thread_pool.hpp"

namespace decycle::baselines {

struct CliqueHCycleOptions {
  unsigned k = 5;                  ///< cycle length h to detect
  std::uint64_t seed = 1;          ///< drives the sampling permutation
  std::size_t initial_sample = 8;  ///< |S_0| (clamped to [1, n]); doubles per phase
  bool validate_witnesses = true;
  util::ThreadPool* pool = nullptr;
  congest::Simulator::DropFilter drop;  ///< optional message-loss adversary
  congest::DeliveryMode delivery = congest::DeliveryMode::kArena;
};

struct CliqueHCycleVerdict {
  bool accepted = true;
  std::size_t rejecting_nodes = 0;     ///< nodes that learned the witness
  std::vector<graph::Vertex> witness;  ///< a validated C_k when rejected
  congest::RunStats stats;

  // --- adaptivity instrumentation (the detector's typed counters) --------
  std::uint64_t phases = 0;            ///< sampling phases executed
  std::uint64_t sampled_vertices = 0;  ///< |S| at exit
  std::uint64_t sampled_edges = 0;     ///< edges of the collector's subgraph at exit
  bool early_exit = false;             ///< found before the full-vertex phase
  std::uint64_t rounds_saved = 0;      ///< schedule rounds skipped by the early exit
};

/// Runs on a fresh clique-model Simulator built for (g, ids).
[[nodiscard]] CliqueHCycleVerdict detect_hcycle_clique(const graph::Graph& g,
                                                       const graph::IdAssignment& ids,
                                                       const CliqueHCycleOptions& options);

/// Same, on an existing Simulator (reset + run — the reuse contract:
/// bit-identical to the fresh-build overload). The simulator MUST have been
/// built with CommModel::clique(); anything else throws CheckError.
[[nodiscard]] CliqueHCycleVerdict detect_hcycle_clique(congest::Simulator& sim,
                                                       const CliqueHCycleOptions& options);

}  // namespace decycle::baselines
