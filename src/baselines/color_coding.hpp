/// \file color_coding.hpp
/// \brief Centralized color-coding k-cycle detection (Alon–Yuster–Zwick).
///
/// The classical sequential comparison point: color vertices uniformly with
/// k colors; a k-cycle survives as a "colorful" cycle with probability
/// k!/k^k >= e^-k, and colorful cycles are found in O(m·2^k) by dynamic
/// programming over color subsets. Repeating ⌈e^k·ln(1/δ)⌉ times gives
/// failure probability δ; the implementation is one-sided (a reported cycle
/// is always validated and real).
///
/// Used by experiment B1 as the centralized reference the distributed tester
/// is measured against, and by tests as an independent exact-ish oracle.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace decycle::baselines {

struct ColorCodingOptions {
  /// 0 = auto: ⌈e^k · ln(1/δ)⌉ with δ = 1/3 (the property-testing guarantee).
  std::size_t iterations = 0;
  std::uint64_t seed = 1;
};

struct ColorCodingResult {
  bool found = false;
  /// Validated witness cycle when found. Named and typed like every other
  /// verdict's witness (graph::Vertex) — the unified-Verdict convention of
  /// core/detector.hpp.
  std::vector<graph::Vertex> witness;
  std::size_t iterations_used = 0;    ///< colorings executed (early exit on found)
  /// The resolved iteration budget: options.iterations, or the auto count
  /// when 0. Single source of truth for "what was configured" (the
  /// detector registry reports it as Verdict::repetitions).
  std::size_t iterations_budget = 0;
};

/// Searches for any Ck. One-sided: found=true always carries a real cycle;
/// found=false may be a false negative with probability <= (1-k!/k^k)^iters.
[[nodiscard]] ColorCodingResult find_cycle_color_coding(const graph::Graph& g, unsigned k,
                                                        const ColorCodingOptions& options);

/// Number of iterations for failure probability delta.
[[nodiscard]] std::size_t color_coding_iterations(unsigned k, double delta) noexcept;

}  // namespace decycle::baselines
