#include "baselines/color_coding.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "graph/subgraph.hpp"
#include "util/check.hpp"

namespace decycle::baselines {

namespace {

using graph::Graph;
using graph::Vertex;

/// Dense set of color masks (indices in [0, 2^k)).
class MaskSet {
 public:
  explicit MaskSet(unsigned k) : words_((std::size_t{1} << k) / 64 + 1, 0) {}

  bool insert(std::uint32_t mask) {
    const std::uint64_t bit = std::uint64_t{1} << (mask % 64);
    std::uint64_t& word = words_[mask / 64];
    if (word & bit) return false;
    word |= bit;
    empty_ = false;
    return true;
  }

  [[nodiscard]] bool contains(std::uint32_t mask) const {
    return (words_[mask / 64] >> (mask % 64)) & 1;
  }

  [[nodiscard]] bool empty() const noexcept { return empty_; }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const auto bit = static_cast<unsigned>(std::countr_zero(word));
        fn(static_cast<std::uint32_t>(w * 64 + bit));
        word &= word - 1;
      }
    }
  }

  void clear() {
    std::fill(words_.begin(), words_.end(), 0);
    empty_ = true;
  }

 private:
  std::vector<std::uint64_t> words_;
  bool empty_ = true;
};

/// One coloring attempt: searches a colorful k-cycle through any vertex of
/// color 0 (every colorful cycle has exactly one such vertex).
std::optional<std::vector<Vertex>> colorful_cycle(const Graph& g, unsigned k,
                                                  const std::vector<std::uint8_t>& color) {
  const std::uint32_t full = (std::uint32_t{1} << k) - 1;
  // levels[l][v] = color masks of colorful paths with l vertices from the
  // current start s to v (mask includes both endpoints' colors). Allocated
  // once; per-start cleanup touches only the vertices actually reached.
  std::vector<std::vector<MaskSet>> levels(k + 1,
                                           std::vector<MaskSet>(g.num_vertices(), MaskSet(k)));
  std::vector<std::vector<Vertex>> touched(k + 1);

  for (Vertex s = 0; s < g.num_vertices(); ++s) {
    if (color[s] != 0) continue;
    for (unsigned len = 1; len <= k; ++len) {
      for (const Vertex v : touched[len]) levels[len][v].clear();
      touched[len].clear();
    }
    levels[1][s].insert(1);  // path = {s}, mask = {color 0}
    touched[1] = {s};

    for (unsigned len = 1; len < k && !touched[len].empty(); ++len) {
      std::vector<Vertex> next;
      for (const Vertex v : touched[len]) {
        levels[len][v].for_each([&](std::uint32_t mask) {
          for (const Vertex w : g.neighbors(v)) {
            const std::uint32_t bit = std::uint32_t{1} << color[w];
            if (mask & bit) continue;  // color already used: not colorful
            if (levels[len + 1][w].empty()) next.push_back(w);
            levels[len + 1][w].insert(mask | bit);
          }
        });
      }
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      touched[len + 1] = std::move(next);
    }

    // Close the cycle: a full-mask path of k vertices ending at a neighbor
    // of s. Then reconstruct backwards through the level sets.
    for (const Vertex w : g.neighbors(s)) {
      if (!levels[k][w].contains(full)) continue;
      std::vector<Vertex> cycle(k);
      Vertex cur = w;
      std::uint32_t mask = full;
      for (unsigned len = k; len >= 2; --len) {
        cycle[len - 1] = cur;
        const std::uint32_t prev_mask = mask & ~(std::uint32_t{1} << color[cur]);
        bool stepped = false;
        for (const Vertex p : g.neighbors(cur)) {
          if (levels[len - 1][p].contains(prev_mask)) {
            cur = p;
            mask = prev_mask;
            stepped = true;
            break;
          }
        }
        DECYCLE_CHECK_MSG(stepped, "color-coding reconstruction failed");
      }
      cycle[0] = cur;
      DECYCLE_CHECK_MSG(cur == s, "color-coding reconstruction did not reach the start");
      DECYCLE_CHECK_MSG(graph::validate_cycle(g, cycle), "color-coding produced a bogus cycle");
      return cycle;
    }
  }
  return std::nullopt;
}

}  // namespace

std::size_t color_coding_iterations(unsigned k, double delta) noexcept {
  // success prob per coloring >= k!/k^k; repeat ln(1/δ)/p times.
  double p = 1.0;
  for (unsigned i = 1; i <= k; ++i) p *= static_cast<double>(i) / static_cast<double>(k);
  const double iters = std::ceil(std::log(1.0 / delta) / p);
  return static_cast<std::size_t>(std::max(1.0, iters));
}

ColorCodingResult find_cycle_color_coding(const Graph& g, unsigned k,
                                          const ColorCodingOptions& options) {
  DECYCLE_CHECK_MSG(k >= 3 && k <= 20, "color coding supports 3 <= k <= 20");
  ColorCodingResult result;
  const std::size_t iterations =
      options.iterations != 0 ? options.iterations : color_coding_iterations(k, 1.0 / 3.0);
  result.iterations_budget = iterations;
  util::Rng rng(options.seed);
  std::vector<std::uint8_t> color(g.num_vertices(), 0);
  for (std::size_t it = 0; it < iterations; ++it) {
    for (auto& c : color) c = static_cast<std::uint8_t>(rng.next_below(k));
    result.iterations_used = it + 1;
    if (auto cycle = colorful_cycle(g, k, color)) {
      result.found = true;
      result.witness = std::move(*cycle);
      return result;
    }
  }
  return result;
}

}  // namespace decycle::baselines
