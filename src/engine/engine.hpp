/// \file engine.hpp
/// \brief DetectionEngine: one batched query-execution substrate for every
/// consumer.
///
/// Before this layer, three subsystems each owned a private copy of the
/// same machinery — lane ranges, per-lane Simulator reuse, indexed result
/// slots, serial reduction: harness::estimate_rate_lanes, the lab runner's
/// per-worker lanes, and the soak campaign's batched slots. DetectionEngine
/// is the single implementation (DESIGN.md §12):
///
///   * a GraphStore of content-addressed pinned graphs with mutation epochs;
///   * a SessionPool caching Simulators behind lane-confined leases;
///   * run_batch: a vector of typed queries (detector, fully resolved
///     DetectorOptions, model, cost weight) against one pinned graph,
///     partitioned into contiguous cost-weighted lanes via
///     ThreadPool::for_weighted; each lane leases one session per session
///     key and runs its queries serially through it; verdicts land in
///     per-query indexed slots, so any reduction that walks them in
///     submission order is byte-identical at every thread count.
///
/// The reduction contract: run_batch returns Verdicts in submission order
/// and *never* aggregates across queries itself — summing, maxing, and
/// typed-counter folding (reduce_counters) are the caller's serial loop.
/// That split is what lets the lab, the harness, and future `decycle_serve`
/// response shaping share one executor while keeping their own output
/// formats bit-stable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "congest/comm_model.hpp"
#include "core/detector.hpp"
#include "engine/graph_store.hpp"
#include "engine/lanes.hpp"
#include "engine/session_pool.hpp"
#include "util/thread_pool.hpp"

namespace decycle::engine {

/// One typed detection query: a single detector run. `options` must be
/// fully resolved by the caller — seed, drop filter, delivery, every knob —
/// and a pure function of the query's content identity, so that execution
/// order can never leak into results.
struct Query {
  const core::Detector* detector = nullptr;
  core::DetectorOptions options;
  /// Communication model the query's session is built under. The engine
  /// refuses (at DECYCLE_CHECK level) detectors whose capability mask
  /// excludes it.
  const congest::CommModel* model = &congest::CommModel::congest();
  /// Relative cost for the lane split (1 = uniform). Callers that know a
  /// query is heavier — amplified repetitions, larger k — bias the
  /// contiguous partition with it.
  std::uint64_t weight = 1;
};

struct EngineOptions {
  util::ThreadPool* pool = nullptr;  ///< query-level parallelism (lanes)
  /// Idle-session cache capacity (SessionPool). 0 caches nothing.
  std::size_t session_capacity = SessionPool::kDefaultCapacity;
  /// Reuse cached sessions across queries/batches. Off = a fresh Simulator
  /// per query (the lab's --reuse=0 measurement mode); detectors whose
  /// capabilities disclaim simulator_reuse always get a fresh build
  /// regardless.
  bool cache_sessions = true;
};

class DetectionEngine {
 public:
  explicit DetectionEngine(const EngineOptions& options = {});

  DetectionEngine(const DetectionEngine&) = delete;
  DetectionEngine& operator=(const DetectionEngine&) = delete;

  [[nodiscard]] const EngineOptions& options() const noexcept { return options_; }
  [[nodiscard]] GraphStore& store() noexcept { return store_; }
  [[nodiscard]] SessionPool& sessions() const noexcept { return sessions_; }
  [[nodiscard]] SessionStats session_stats() const { return sessions_.stats(); }

  /// Runs every query against \p graph and returns the verdicts in
  /// submission order (per-query indexed slots — the byte-identity
  /// contract). Lanes are contiguous and cost-weighted by Query::weight;
  /// each lane holds one leased session at a time and re-leases when the
  /// session key changes (model/delivery switches mid-batch are legal but
  /// cost a lease each).
  [[nodiscard]] std::vector<core::Verdict> run_batch(const PinnedGraphPtr& graph,
                                                     std::span<const Query> queries) const;

  /// One query through a leased (or fresh) session — run_batch's inner step,
  /// exposed for callers with their own loop structure.
  [[nodiscard]] core::Verdict run_one(const PinnedGraphPtr& graph, const Query& q) const;

  /// One query on a caller-owned topology, always on a fresh Simulator,
  /// bypassing the session cache — the fresh-graph lab mode, where every
  /// trial's topology is unique and caching it would only churn the LRU.
  [[nodiscard]] static core::Verdict run_uncached(const graph::Graph& g,
                                                  const graph::IdAssignment& ids,
                                                  const Query& q);

 private:
  [[nodiscard]] core::Verdict run_leased(SessionPool::Lease& lease, const PinnedGraphPtr& graph,
                                         const Query& q) const;

  EngineOptions options_;
  GraphStore store_;
  mutable SessionPool sessions_;
};

/// Folds \p verdicts' per-query counter values into \p d's counter table
/// shape, per each CounterDef's kind (sum or max) — the serial typed
/// reduction every consumer shares. Returns one value per counters() entry.
[[nodiscard]] std::vector<std::uint64_t> reduce_counters(const core::Detector& d,
                                                         std::span<const core::Verdict> verdicts);

/// Process-wide engine for harness conveniences (detector_lanes): lazily
/// constructed, no pool (callers pass their own parallelism), default
/// session capacity. Cached sessions persist across estimate calls on the
/// same topology — the cold-vs-warm gap bench/m8_engine_micro measures.
[[nodiscard]] DetectionEngine& shared_engine();

}  // namespace decycle::engine
