#include "engine/graph_store.hpp"

#include <utility>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace decycle::engine {

namespace {
constexpr std::uint64_t kGraphTag = 0x656e675f67726170ULL;  // "eng_grap"
}  // namespace

std::uint64_t structural_hash(const graph::Graph& g, const graph::IdAssignment& ids) {
  std::uint64_t h = util::splitmix64(kGraphTag);
  h = util::hash_combine(h, g.num_vertices());
  h = util::hash_combine(h, g.num_edges());
  for (const graph::Edge& e : g.edges()) {
    h = util::hash_combine(h, (static_cast<std::uint64_t>(e.first) << 32) | e.second);
  }
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    h = util::hash_combine(h, ids.id_of(v));
  }
  return h;
}

PinnedGraphPtr pin(graph::Graph g, graph::IdAssignment ids, std::uint64_t content_hash) {
  if (content_hash == 0) content_hash = structural_hash(g, ids);
  return std::make_shared<PinnedGraph>(std::move(g), std::move(ids), content_hash);
}

PinnedGraphPtr GraphStore::intern(std::string name, graph::Graph g, graph::IdAssignment ids) {
  DECYCLE_CHECK_MSG(!name.empty(), "graph store: name must be non-empty");
  PinnedGraphPtr pinned = pin(std::move(g), std::move(ids));
  const std::lock_guard<std::mutex> lock(mutex_);
  entries_[std::move(name)] = pinned;
  return pinned;
}

PinnedGraphPtr GraphStore::find(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(name);
  return it != entries_.end() ? it->second : nullptr;
}

PinnedGraphPtr GraphStore::require(std::string_view name) const {
  PinnedGraphPtr found = find(name);
  if (found == nullptr) {
    std::string known;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      for (const auto& [entry_name, pinned] : entries_) {
        if (!known.empty()) known += ", ";
        known += entry_name;
      }
    }
    DECYCLE_CHECK_MSG(false, "graph store: unknown graph '" + std::string(name) +
                                 "' (stored: " + (known.empty() ? "<none>" : known) + ")");
  }
  return found;
}

std::uint64_t GraphStore::bump_epoch(std::string_view name) {
  PinnedGraphPtr found = require(name);
  return found->epoch.fetch_add(1, std::memory_order_acq_rel) + 1;
}

std::size_t GraphStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::vector<std::string> GraphStore::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, pinned] : entries_) out.push_back(name);
  return out;
}

}  // namespace decycle::engine
