/// \file session_pool.hpp
/// \brief Cached Simulator sessions behind lane-confined leases.
///
/// Building a congest::Simulator costs an O(m) CSR reverse-port sweep plus
/// first-run arena growth; resetting one is nearly free (DESIGN.md §4, §6).
/// The lab's per-worker-lane reuse and the soak's batched slots each used to
/// hand-roll that amortization. The SessionPool is the shared generalization:
/// a capacity-bounded LRU cache of sessions keyed on
///
///   (graph structural hash, graph epoch, communication model, delivery mode)
///
/// handed out as RAII leases. While leased, a session is owned by exactly
/// one lane — the pool forgets it entirely, so concurrent lanes can never
/// share a Simulator and eviction can never free a session mid-run
/// (lease-while-evicted safety: eviction only ever touches idle sessions).
/// Dropping the lease returns the session to the idle cache and evicts the
/// least-recently-used idle session past capacity. Every session co-owns
/// its PinnedGraph, so cache hits stay valid after the lessee's own graph
/// goes out of scope, and the Simulator's pooled NodeProgram allocator
/// (PR 6) rides along: reset-heavy trial sweeps on a leased session are
/// heap-silent after warmup.
///
/// Thread safety: lease()/release and the counters are mutex-guarded; the
/// expensive Simulator build runs outside the lock. The leased Simulator
/// itself is lane-confined by construction and must not be shared.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "congest/comm_model.hpp"
#include "congest/simulator.hpp"
#include "engine/graph_store.hpp"

namespace decycle::engine {

/// Cache identity of a session. Folding the epoch means a GraphStore
/// mutation bump retires old sessions without touching the pool.
struct SessionKey {
  std::uint64_t graph_hash = 0;
  std::uint64_t epoch = 0;
  congest::CommModelKind model = congest::CommModelKind::kCongest;
  congest::DeliveryMode delivery = congest::DeliveryMode::kArena;

  [[nodiscard]] bool operator==(const SessionKey&) const noexcept = default;
};

/// Cumulative cache counters (monotonic; read via SessionPool::stats and
/// surfaced by `decycle_lab --engine-stats`).
struct SessionStats {
  std::uint64_t hits = 0;       ///< lease served from the idle cache
  std::uint64_t misses = 0;     ///< lease had to build a Simulator
  std::uint64_t evictions = 0;  ///< idle sessions destroyed past capacity
  std::uint64_t purges = 0;     ///< purge() calls (mutation-driven retirements)
  std::uint64_t purged_sessions = 0;  ///< idle sessions destroyed by purge()
};

class SessionPool {
 public:
  /// One cached session: the Simulator plus the graph it co-owns.
  struct Session {
    SessionKey key;
    PinnedGraphPtr graph;
    congest::Simulator sim;
    std::uint64_t last_used = 0;  ///< LRU stamp (pool tick at release)

    Session(SessionKey k, PinnedGraphPtr g, const congest::CommModel& model)
        : key(k), graph(std::move(g)), sim(graph->graph, graph->ids, model) {}
  };

  /// RAII session lease. Move-only; returns the session to the pool on
  /// destruction. A default-constructed / moved-from lease is empty.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = std::exchange(other.pool_, nullptr);
        session_ = std::move(other.session_);
        cached_ = other.cached_;
      }
      return *this;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() { release(); }

    [[nodiscard]] congest::Simulator& sim() { return session_->sim; }
    [[nodiscard]] const SessionKey& key() const { return session_->key; }
    /// True when this lease was served from the cache (the session had run
    /// before and the detector's reset-reuse contract applies).
    [[nodiscard]] bool cached() const noexcept { return cached_; }
    [[nodiscard]] explicit operator bool() const noexcept { return session_ != nullptr; }

    /// Returns the session to the pool now (idempotent).
    void release();

   private:
    friend class SessionPool;
    Lease(SessionPool* pool, std::unique_ptr<Session> session, bool cached)
        : pool_(pool), session_(std::move(session)), cached_(cached) {}

    SessionPool* pool_ = nullptr;
    std::unique_ptr<Session> session_;
    bool cached_ = false;
  };

  static constexpr std::size_t kDefaultCapacity = 64;

  /// \p capacity bounds the number of *idle* sessions kept for reuse;
  /// leased sessions are unbounded (they are the working set). Capacity 0
  /// caches nothing — every lease is a cold build, every release a destroy.
  explicit SessionPool(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Leases a session for \p graph under (\p model, \p delivery): a cached
  /// idle session for the key when one exists (hit), otherwise a freshly
  /// built one (miss). Safe to call concurrently from lanes. The lease must
  /// not outlive the pool.
  [[nodiscard]] Lease lease(const PinnedGraphPtr& graph, const congest::CommModel& model,
                            congest::DeliveryMode delivery = congest::DeliveryMode::kArena);

  /// Drops every idle session of \p graph_hash (any epoch, model, delivery).
  /// Counted as purges/purged_sessions (distinct from capacity evictions, so
  /// mutation-driven retirement is visible in stats on its own — see
  /// `decycle_lab --engine-stats`). Leased sessions are unaffected — they die on
  /// release instead of rejoining the cache only if past capacity, exactly
  /// like any other release.
  void purge(std::uint64_t graph_hash);

  [[nodiscard]] SessionStats stats() const;
  [[nodiscard]] std::size_t idle_count() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct KeyHash {
    [[nodiscard]] std::size_t operator()(const SessionKey& k) const noexcept;
  };

  void release_session(std::unique_ptr<Session> session);
  /// Destroys the least-recently-used idle session. Caller holds the lock;
  /// the session is destroyed after the lock is dropped by the caller side
  /// (destruction under the lock is fine too — Simulator teardown does not
  /// reenter the pool — but we keep the critical section small).
  std::unique_ptr<Session> pop_lru_locked();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<SessionKey, std::vector<std::unique_ptr<Session>>, KeyHash> idle_;
  std::size_t idle_total_ = 0;
  std::uint64_t tick_ = 0;
  SessionStats stats_;
};

}  // namespace decycle::engine
