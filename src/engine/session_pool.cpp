#include "engine/session_pool.hpp"

#include <utility>

#include "util/hash.hpp"

namespace decycle::engine {

std::size_t SessionPool::KeyHash::operator()(const SessionKey& k) const noexcept {
  std::uint64_t h = util::splitmix64(k.graph_hash);
  h = util::hash_combine(h, k.epoch);
  h = util::hash_combine(h, static_cast<std::uint64_t>(k.model));
  h = util::hash_combine(h, static_cast<std::uint64_t>(k.delivery));
  return static_cast<std::size_t>(h);
}

void SessionPool::Lease::release() {
  if (session_ == nullptr) return;
  SessionPool* pool = std::exchange(pool_, nullptr);
  if (pool != nullptr) pool->release_session(std::move(session_));
  session_.reset();
}

SessionPool::Lease SessionPool::lease(const PinnedGraphPtr& graph,
                                      const congest::CommModel& model,
                                      congest::DeliveryMode delivery) {
  const SessionKey key{graph->hash, graph->epoch.load(std::memory_order_acquire),
                       model.kind(), delivery};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = idle_.find(key);
    if (it != idle_.end() && !it->second.empty()) {
      std::unique_ptr<Session> session = std::move(it->second.back());
      it->second.pop_back();
      --idle_total_;
      // 64-bit content hashes make collisions implausible, but a collision
      // would silently run the wrong topology — guard on the cheap
      // structural facts before trusting the cache.
      if (session->graph->graph.num_vertices() == graph->graph.num_vertices() &&
          session->graph->graph.num_edges() == graph->graph.num_edges()) {
        ++stats_.hits;
        return Lease(this, std::move(session), /*cached=*/true);
      }
      // Collision: fall through to a cold build; the popped session dies.
      ++stats_.evictions;
    }
    ++stats_.misses;
  }
  // The O(m) Simulator build runs outside the lock so concurrent lanes
  // building sessions for different graphs do not serialize.
  auto session = std::make_unique<Session>(key, graph, model);
  return Lease(this, std::move(session), /*cached=*/false);
}

void SessionPool::release_session(std::unique_ptr<Session> session) {
  std::unique_ptr<Session> evicted;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (capacity_ == 0) {
      ++stats_.evictions;
    } else {
      session->last_used = ++tick_;
      idle_[session->key].push_back(std::move(session));
      ++idle_total_;
      if (idle_total_ > capacity_) {
        evicted = pop_lru_locked();
        ++stats_.evictions;
      }
    }
  }
  // `session` (capacity 0) or `evicted` is destroyed here, outside the lock.
}

std::unique_ptr<SessionPool::Session> SessionPool::pop_lru_locked() {
  auto* oldest_list = static_cast<std::vector<std::unique_ptr<Session>>*>(nullptr);
  std::size_t oldest_index = 0;
  std::uint64_t oldest_tick = ~std::uint64_t{0};
  for (auto& [key, sessions] : idle_) {
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      if (sessions[i]->last_used < oldest_tick) {
        oldest_tick = sessions[i]->last_used;
        oldest_list = &sessions;
        oldest_index = i;
      }
    }
  }
  if (oldest_list == nullptr) return nullptr;
  std::unique_ptr<Session> evicted = std::move((*oldest_list)[oldest_index]);
  oldest_list->erase(oldest_list->begin() + static_cast<std::ptrdiff_t>(oldest_index));
  --idle_total_;
  return evicted;
}

void SessionPool::purge(std::uint64_t graph_hash) {
  std::vector<std::unique_ptr<Session>> purged;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.purges;
    for (auto it = idle_.begin(); it != idle_.end();) {
      if (it->first.graph_hash == graph_hash) {
        for (auto& session : it->second) {
          purged.push_back(std::move(session));
          --idle_total_;
          ++stats_.purged_sessions;
        }
        it = idle_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Sessions destroyed outside the lock.
}

SessionStats SessionPool::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t SessionPool::idle_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return idle_total_;
}

}  // namespace decycle::engine
