#include "engine/lanes.hpp"

#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace decycle::engine {

namespace {

/// Contiguous cost-weighted boundaries: lane l owns [bounds[l], bounds[l+1]).
/// Each lane's cumulative weight approximates total/lanes, and every lane is
/// kept non-empty (the trailing lanes are guaranteed at least one unit each)
/// so a degenerate weight vector can never produce an idle lane with a
/// leased-but-unused session.
std::vector<std::size_t> weighted_bounds(std::size_t count, const std::uint64_t* weights,
                                         std::size_t lanes) {
  std::vector<std::size_t> bounds(lanes + 1, 0);
  bounds[lanes] = count;
  // Unit weights of 0 are treated as 1 so the prefix sum stays strictly
  // increasing enough to cut.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < count; ++i) total += std::max<std::uint64_t>(weights[i], 1);
  std::uint64_t prefix = 0;
  std::size_t unit = 0;
  for (std::size_t lane = 1; lane < lanes; ++lane) {
    const std::uint64_t target = total * lane / lanes;
    while (unit < count && prefix < target) {
      prefix += std::max<std::uint64_t>(weights[unit], 1);
      ++unit;
    }
    // Leave at least one unit behind us and one per remaining lane, then
    // re-sync the prefix sum to wherever the clamp moved the cut.
    const std::size_t cut =
        std::clamp(unit, bounds[lane - 1] + 1, count - (lanes - lane));
    while (unit < cut) {
      prefix += std::max<std::uint64_t>(weights[unit], 1);
      ++unit;
    }
    while (unit > cut) {
      --unit;
      prefix -= std::max<std::uint64_t>(weights[unit], 1);
    }
    bounds[lane] = cut;
  }
  return bounds;
}

}  // namespace

void for_lanes(util::ThreadPool* pool, std::size_t count, const std::uint64_t* weights,
               const LaneFn& fn) {
  if (count == 0) return;
  const std::size_t lanes = lane_count(pool, count);
  if (weights == nullptr) {
    const auto run_lane = [&](std::size_t lane) {
      const auto [begin, end] = lane_range(count, lane, lanes);
      fn(lane, begin, end);
    };
    // lane_count never reports more than one lane without a pool, but the
    // dispatch re-checks the pointer so a future lane policy can't turn a
    // serial call into a null deref.
    if (pool != nullptr && lanes > 1) {
      pool->for_weighted(lanes, nullptr, run_lane);
    } else {
      run_lane(0);
    }
    return;
  }
  const std::vector<std::size_t> bounds = weighted_bounds(count, weights, lanes);
  std::vector<std::uint64_t> lane_cost(lanes, 0);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    for (std::size_t i = bounds[lane]; i < bounds[lane + 1]; ++i) {
      lane_cost[lane] += std::max<std::uint64_t>(weights[i], 1);
    }
  }
  const auto run_lane = [&](std::size_t lane) { fn(lane, bounds[lane], bounds[lane + 1]); };
  if (pool != nullptr && lanes > 1) {
    pool->for_weighted(lanes, lane_cost.data(), run_lane);
  } else {
    run_lane(0);
  }
}

}  // namespace decycle::engine
