/// \file lanes.hpp
/// \brief The lane/seed substrate every batched execution layer shares.
///
/// Three subsystems used to re-derive the same three facts independently:
/// how many contiguous lanes a batch splits into (harness estimator, lab
/// runner, soak campaign), which [begin, end) block of unit indices a lane
/// owns, and how a unit's 64-bit seed is folded from its content identity
/// (trial index, cell key string, soak instance id string). This header is
/// now the single definition of all of them — the byte-identity contracts
/// of the golden nightly matrix, the soak campaign logs, and every checked
/// in repro file are pinned to these derivations (see
/// tests/lab/seed_stability_test.cpp), so they must never move again.
///
/// The execution discipline that rides on top (and that engine::for_lanes
/// implements once): units are partitioned into contiguous lanes, one lane
/// per pool worker; per-lane state (a leased Simulator session) is confined
/// to its lane; outcomes land in per-unit indexed slots; reductions run
/// serially in unit order. Output is then a pure function of unit content —
/// independent of thread count, lane boundaries, and scheduling.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace decycle::engine {

/// Trial \p trial's seed. The single definition shared by
/// harness::estimate_rate, estimate_rate_lanes, DetectionEngine batches,
/// and the lab runner — their estimates are bit-compatible because they all
/// derive seeds here.
[[nodiscard]] constexpr std::uint64_t trial_seed(std::uint64_t base_seed,
                                                 std::size_t trial) noexcept {
  return util::splitmix64(base_seed ^ util::splitmix64(trial + 1));
}

/// Content-addressed seed folding: splitmix64-absorbs every byte of \p id
/// into \p h. Lab cell seeds fold the canonical cell key, soak instance
/// seeds fold "soak/v1 seed=<S> instance=<I>" — both through this one
/// function, so the fold can never drift between subsystems.
[[nodiscard]] constexpr std::uint64_t fold_seed(std::uint64_t h, std::string_view id) noexcept {
  for (const char c : id) h = util::splitmix64(h ^ static_cast<unsigned char>(c));
  return h;
}

/// Lane \p lane's contiguous [begin, end) block of \p total units.
[[nodiscard]] constexpr std::pair<std::size_t, std::size_t> lane_range(
    std::size_t total, std::size_t lane, std::size_t lanes) noexcept {
  return {total * lane / lanes, total * (lane + 1) / lanes};
}

/// How many lanes \p units split into on \p pool: one per worker, never
/// more than units, 1 without a pool.
[[nodiscard]] inline std::size_t lane_count(const util::ThreadPool* pool,
                                            std::size_t units) noexcept {
  if (pool == nullptr) return 1;
  return std::max<std::size_t>(1, std::min(pool->size(), units));
}

/// One lane's serial sweep over its contiguous block: fn(lane, begin, end).
using LaneFn = std::function<void(std::size_t lane, std::size_t begin, std::size_t end)>;

/// Runs \p count units through contiguous lanes across \p pool — the one
/// dispatch the estimator, the lab runner, the soak campaign, and
/// DetectionEngine::run_batch all use. Lanes are lane_count(pool, count)
/// blocks of lane_range; \p weights (length \p count, nullptr = uniform)
/// switches to a cumulative-cost contiguous split in which every lane stays
/// non-empty. The caller's fn must write results into per-unit indexed
/// slots; with that discipline the reduction cannot observe lane boundaries
/// and output is byte-identical for any thread count.
void for_lanes(util::ThreadPool* pool, std::size_t count, const std::uint64_t* weights,
               const LaneFn& fn);

}  // namespace decycle::engine
