/// \file graph_store.hpp
/// \brief Content-addressed named graphs with mutation epochs.
///
/// The detection engine owns graphs through PinnedGraph: an immutable
/// (topology, id assignment) pair stamped with a structural content hash —
/// folded over vertices, edges, and ids exactly in the spirit of the soak's
/// content-addressed instance seeds — plus a monotonically increasing epoch
/// counter. Cached Simulator sessions key on (hash, epoch), so a future
/// mutation (the incremental-insert service of Cohen–Fiat–Kaplan–Roditty,
/// see ROADMAP) invalidates every cached session of a graph with one atomic
/// bump instead of a cache sweep: stale sessions simply never match again
/// and age out of the LRU.
///
/// GraphStore is the named front of the same idea — the multi-tenant
/// `decycle_serve` daemon will intern client graphs here once and route
/// queries by name. Everything is shared_ptr-owned so a leased session can
/// co-own its topology: evicting a store entry (or letting a lab cell's
/// local topology go out of scope) can never leave a cached Simulator
/// pointing at freed memory.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "graph/ids.hpp"

namespace decycle::engine {

/// Structural content hash of (g, ids): folds vertex count, every edge in
/// canonical order, and every node id. Two pins of byte-identical content
/// hash equal — the property that lets sibling lab cells (same family/k/n,
/// different algo) share cached sessions.
[[nodiscard]] std::uint64_t structural_hash(const graph::Graph& g,
                                            const graph::IdAssignment& ids);

/// An immutable graph + id assignment a session can co-own. `epoch` is the
/// only mutable field: bumping it (GraphStore::bump_epoch) retires every
/// cached session keyed on the old value.
struct PinnedGraph {
  PinnedGraph(graph::Graph g, graph::IdAssignment assignment, std::uint64_t content_hash)
      : graph(std::move(g)), ids(std::move(assignment)), hash(content_hash) {}

  const graph::Graph graph;
  const graph::IdAssignment ids;
  const std::uint64_t hash;
  std::atomic<std::uint64_t> epoch{0};
};

using PinnedGraphPtr = std::shared_ptr<PinnedGraph>;

/// Pins (g, ids) under its structural hash. The graph is moved, never
/// copied twice; callers that already know a content address (e.g. a lab
/// cell seed, itself content-derived) may supply it to skip the O(n + m)
/// hash sweep.
[[nodiscard]] PinnedGraphPtr pin(graph::Graph g, graph::IdAssignment ids,
                                 std::uint64_t content_hash = 0);

class GraphStore {
 public:
  GraphStore() = default;
  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Interns (g, ids) under \p name. Re-interning an existing name replaces
  /// the entry (fresh pin, epoch 0); old pins stay alive for as long as any
  /// session co-owns them.
  PinnedGraphPtr intern(std::string name, graph::Graph g, graph::IdAssignment ids);

  /// nullptr when \p name is unknown.
  [[nodiscard]] PinnedGraphPtr find(std::string_view name) const;

  /// Throws CheckError naming the stored graphs when \p name is unknown.
  [[nodiscard]] PinnedGraphPtr require(std::string_view name) const;

  /// Bumps \p name's epoch and returns the new value — the cheap
  /// whole-graph session invalidation the incremental-insert service will
  /// call per mutation batch. Throws CheckError when \p name is unknown.
  std::uint64_t bump_epoch(std::string_view name);

  [[nodiscard]] std::size_t size() const;

  /// Stored names in lexicographic order (listings, diagnostics).
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, PinnedGraphPtr, std::less<>> entries_;
};

}  // namespace decycle::engine
