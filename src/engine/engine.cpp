#include "engine/engine.hpp"

#include <algorithm>
#include <string>

#include "util/check.hpp"

namespace decycle::engine {

DetectionEngine::DetectionEngine(const EngineOptions& options)
    : options_(options), sessions_(options.session_capacity) {}

core::Verdict DetectionEngine::run_uncached(const graph::Graph& g, const graph::IdAssignment& ids,
                                            const Query& q) {
  DECYCLE_CHECK_MSG(q.detector != nullptr, "engine: query has no detector");
  congest::Simulator sim(g, ids, *q.model);
  return q.detector->run(sim, q.options);
}

core::Verdict DetectionEngine::run_leased(SessionPool::Lease& lease, const PinnedGraphPtr& graph,
                                          const Query& q) const {
  DECYCLE_CHECK_MSG(q.detector != nullptr, "engine: query has no detector");
  const core::DetectorCapabilities& caps = q.detector->capabilities();
  DECYCLE_CHECK_MSG(core::supports_model(caps, q.model->kind()),
                    "engine: detector '" + std::string(q.detector->name()) +
                        "' does not run under model '" + std::string(q.model->name()) + "'");
  if (!options_.cache_sessions || !caps.simulator_reuse) {
    // A detector that disclaims the reset-reuse contract must never see a
    // second-hand simulator; with caching off, a fresh build per query is
    // the measurement mode the lab's --reuse=0 axis asks for.
    lease.release();
    return run_uncached(graph->graph, graph->ids, q);
  }
  const SessionKey want{graph->hash, graph->epoch.load(std::memory_order_acquire),
                        q.model->kind(), q.options.delivery};
  if (!lease || !(lease.key() == want)) {
    lease.release();
    lease = sessions_.lease(graph, *q.model, q.options.delivery);
  }
  return q.detector->run(lease.sim(), q.options);
}

core::Verdict DetectionEngine::run_one(const PinnedGraphPtr& graph, const Query& q) const {
  DECYCLE_CHECK_MSG(graph != nullptr, "engine: run_one needs a pinned graph");
  SessionPool::Lease lease;
  return run_leased(lease, graph, q);
}

std::vector<core::Verdict> DetectionEngine::run_batch(const PinnedGraphPtr& graph,
                                                      std::span<const Query> queries) const {
  DECYCLE_CHECK_MSG(graph != nullptr, "engine: run_batch needs a pinned graph");
  std::vector<core::Verdict> out(queries.size());
  if (queries.empty()) return out;

  // Uniform batches skip the weighted partition entirely so they split via
  // lane_range — the exact historical boundaries the goldens were cut with.
  bool uniform = true;
  std::vector<std::uint64_t> weights(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    weights[i] = queries[i].weight;
    if (weights[i] != weights[0]) uniform = false;
  }

  for_lanes(options_.pool, queries.size(), uniform ? nullptr : weights.data(),
            [&](std::size_t /*lane*/, std::size_t begin, std::size_t end) {
              // One lease held per lane, re-leased only when the session key
              // changes — within a homogeneous batch that is one lease for
              // the whole lane.
              SessionPool::Lease lease;
              for (std::size_t i = begin; i < end; ++i) {
                out[i] = run_leased(lease, graph, queries[i]);
              }
            });
  return out;
}

std::vector<std::uint64_t> reduce_counters(const core::Detector& d,
                                           std::span<const core::Verdict> verdicts) {
  const std::span<const core::CounterDef> defs = d.counters();
  std::vector<std::uint64_t> out(defs.size(), 0);
  for (const core::Verdict& v : verdicts) {
    DECYCLE_CHECK_MSG(v.counters.size() == defs.size(),
                      "engine: verdict counter table does not match detector '" +
                          std::string(d.name()) + "'");
    for (std::size_t c = 0; c < defs.size(); ++c) {
      out[c] = defs[c].kind == core::CounterKind::kSum ? out[c] + v.counters[c]
                                                       : std::max(out[c], v.counters[c]);
    }
  }
  return out;
}

DetectionEngine& shared_engine() {
  static DetectionEngine engine{EngineOptions{}};
  return engine;
}

}  // namespace decycle::engine
