/// \file paper_walkthrough.cpp
/// \brief The paper's two worked examples, traced round by round.
///
/// Drives EdgeDetectState instances by hand (no simulator) so every bundle
/// is visible, reproducing:
///
///   1. §3.3's C9 narrative — IDs 1..9 around a cycle, edge {1,9}: node 3
///      receives (1,2) and must forward (1,2,3), which only works because
///      Instruction 14 adds the fake IDs {-1..-6}. The trace is printed with
///      fake IDs on and off.
///   2. Figure 1 — the C5 through {u,v} where x and y hear both endpoints;
///      the trace shows the pruned bundle keeping both (u,x) and (v,x).
///
///   ./paper_walkthrough
#include <cstdio>
#include <string>
#include <vector>

#include "core/detect_state.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"

namespace {

using namespace decycle;
using core::EdgeDetectState;
using core::IdSeq;

std::string bundle_to_string(const std::vector<IdSeq>& bundle) {
  if (bundle.empty()) return "(nothing)";
  std::string out;
  for (const auto& s : bundle) {
    if (!out.empty()) out += ' ';
    out += core::to_string(s);
  }
  return out;
}

/// Runs Phase 2 on an arbitrary graph by hand, printing each node's bundle.
/// Node IDs are vertex+1 so the output matches the paper's 1-based IDs.
bool trace_phase2(const graph::Graph& g, unsigned k, graph::Vertex u, graph::Vertex v,
                  bool fake_ids, bool verbose) {
  core::DetectParams params;
  params.k = k;
  params.fake_ids = fake_ids;
  const auto id_of = [](graph::Vertex x) { return static_cast<core::NodeId>(x) + 1; };

  std::vector<EdgeDetectState> states;
  states.reserve(g.num_vertices());
  for (graph::Vertex x = 0; x < g.num_vertices(); ++x) {
    states.emplace_back(params, id_of(x), id_of(u), id_of(v));
  }

  // outgoing[x] = bundle node x broadcast in the previous round.
  std::vector<std::vector<IdSeq>> outgoing(g.num_vertices());
  for (graph::Vertex x = 0; x < g.num_vertices(); ++x) {
    outgoing[x] = states[x].seed();
    if (verbose && !outgoing[x].empty()) {
      std::printf("  round 0: node %llu seeds %s\n",
                  static_cast<unsigned long long>(id_of(x)),
                  bundle_to_string(outgoing[x]).c_str());
    }
  }

  const unsigned half = k / 2;
  for (unsigned g_round = 1; g_round <= half; ++g_round) {
    std::vector<std::vector<IdSeq>> next(g.num_vertices());
    for (graph::Vertex x = 0; x < g.num_vertices(); ++x) {
      std::vector<IdSeq> received;
      for (const graph::Vertex nb : g.neighbors(x)) {
        received.insert(received.end(), outgoing[nb].begin(), outgoing[nb].end());
      }
      if (received.empty()) continue;
      next[x] = states[x].step(g_round, std::move(received));
      if (verbose && !next[x].empty()) {
        std::printf("  round %u: node %llu forwards %s\n", g_round,
                    static_cast<unsigned long long>(id_of(x)),
                    bundle_to_string(next[x]).c_str());
      }
    }
    outgoing = std::move(next);
  }

  for (graph::Vertex x = 0; x < g.num_vertices(); ++x) {
    if (states[x].rejected()) {
      std::printf("  => node %llu REJECTS; witness IDs:",
                  static_cast<unsigned long long>(id_of(x)));
      for (const auto id : states[x].witness_cycle_ids()) {
        std::printf(" %llu", static_cast<unsigned long long>(id));
      }
      std::printf("\n");
      return true;
    }
  }
  std::printf("  => all nodes accept\n");
  return false;
}

}  // namespace

int main() {
  std::printf("=== Part 1: the C9 walkthrough of paper section 3.3 ===\n");
  std::printf("Cycle with IDs 1..9, checking edge {1, 9} for a C9.\n\n");
  const graph::Graph c9 = graph::cycle(9);

  std::printf("With Instruction 14 (fake IDs {-1..-(k-t)} added to I):\n");
  const bool with_fakes = trace_phase2(c9, 9, 0, 8, /*fake_ids=*/true, /*verbose=*/true);

  std::printf("\nWithout Instruction 14 — node 3 holds R = {(1 2)}, I = {1, 2}; no 6-element\n"
              "completion set exists, so X is empty and (1 2) is dropped, exactly as the\n"
              "paper explains:\n");
  const bool without_fakes = trace_phase2(c9, 9, 0, 8, /*fake_ids=*/false, /*verbose=*/true);

  std::printf("\n=== Part 2: Figure 1 — detecting a C5 through {u, v} ===\n");
  std::printf("u=1, v=2 adjacent to both x=4 and y=5; apex z=3 closes the C5.\n"
              "Both (u x) and (v x) survive the pruning, so z sees disjoint halves:\n\n");
  graph::GraphBuilder b;
  b.add_edge(0, 1);  // u-v
  b.add_edge(0, 3);  // u-x
  b.add_edge(1, 3);  // v-x
  b.add_edge(0, 4);  // u-y
  b.add_edge(1, 4);  // v-y
  b.add_edge(3, 2);  // x-z
  b.add_edge(4, 2);  // y-z
  const graph::Graph fig1 = b.build();
  const bool fig1_found = trace_phase2(fig1, 5, 0, 1, /*fake_ids=*/true, /*verbose=*/true);

  std::printf("\nsummary: C9 with fakes: %s | C9 without fakes: %s | Figure 1 C5: %s\n",
              with_fakes ? "detected" : "missed", without_fakes ? "detected" : "missed",
              fig1_found ? "detected" : "missed");
  return (with_fakes && !without_fakes && fig1_found) ? 0 : 1;
}
