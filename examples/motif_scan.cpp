/// \file motif_scan.cpp
/// \brief Cycle-motif census of a network with the distributed tester.
///
/// Sweeps k = 3..kmax over a configurable network family and reports, for
/// each k, the distributed verdict, the witness, the exact count from the
/// centralized oracle, and the communication cost. Demonstrates (a) the
/// tester as a building block for motif analytics and (b) how the cost
/// scales with k at fixed instance size.
///
///   ./motif_scan [--family=smallworld|torus|clique|random] [--n=64]
///                [--kmax=8] [--seed=5]
#include <cstdio>
#include <iostream>
#include <string>

#include "core/census.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

decycle::graph::Graph make_family(const std::string& family, decycle::graph::Vertex n,
                                  decycle::util::Rng& rng) {
  using namespace decycle::graph;
  if (family == "torus") {
    const auto side = static_cast<Vertex>(8);
    return grid(side, std::max<Vertex>(3, n / side), /*wrap=*/true);
  }
  if (family == "clique") return complete(std::min<Vertex>(n, 14));
  if (family == "random") return erdos_renyi_gnm(n, 2 * static_cast<std::size_t>(n), rng);
  // "smallworld": ring + random chords.
  GraphBuilder b(n);
  for (Vertex v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  for (Vertex c = 0; c < n / 4; ++c) {
    const auto u = static_cast<Vertex>(rng.next_below(n));
    const auto w = static_cast<Vertex>(rng.next_below(n));
    if (u != w) b.add_edge(u, w);
  }
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  const std::string family = args.get_string("family", "smallworld");
  const auto n = static_cast<graph::Vertex>(args.get_u64("n", 64));
  const auto kmax = static_cast<unsigned>(args.get_u64("kmax", 8));
  const std::uint64_t seed = args.get_u64("seed", 5);
  args.reject_unknown();

  util::Rng rng(seed);
  const graph::Graph g = make_family(family, n, rng);
  const graph::IdAssignment ids = graph::IdAssignment::shuffled(g.num_vertices(), rng);
  std::printf("motif scan on '%s': n=%u m=%zu\n", family.c_str(), g.num_vertices(), g.num_edges());

  // One call sweeps the whole k range (core/census.hpp).
  core::CensusOptions copt;
  copt.k_min = 3;
  copt.k_max = kmax;
  copt.epsilon = 0.08;
  copt.seed = seed;
  const core::CensusResult census = core::cycle_census(g, ids, copt);

  util::Table table({"k", "tester", "witness", "exact Ck count", "rounds", "messages", "KiB"});
  for (const auto& entry : census.entries) {
    std::string witness = "-";
    if (!entry.accepted) {
      witness.clear();
      for (const auto v : entry.witness) {
        if (!witness.empty()) witness.push_back('-');
        witness.append(std::to_string(v));
      }
    }
    const std::uint64_t exact = graph::count_cycles(g, entry.k);
    table.row()
        .cell(static_cast<std::uint64_t>(entry.k))
        .cell(entry.accepted ? "accept" : "REJECT")
        .cell(witness)
        .cell(exact)
        .cell(entry.rounds)
        .cell(static_cast<std::uint64_t>(entry.messages))
        .cell(static_cast<double>(entry.bits) / 8192.0, 1);
  }
  table.print(std::cout, "cycle motifs (tester verdict vs exact census)");
  if (census.smallest_detected() != 0) {
    std::printf("girth upper bound from the census: %u\n", census.smallest_detected());
  }
  std::printf("note: 'accept' with count>0 is possible by design — the tester guarantees\n"
              "detection w.p. >= 2/3 only on eps-far instances; REJECT is always certified.\n");
  return 0;
}
