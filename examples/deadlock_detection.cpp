/// \file deadlock_detection.cpp
/// \brief Distributed deadlock detection as k-cycle detection.
///
/// The paper's introduction points at deadlock detection in routing and
/// databases as the classical application of distributed cycle detection
/// (§1.3.4). This example models a lock manager: transactions and resources
/// form a wait-for network, and a deadlock involving j transactions shows up
/// as a 2j-cycle in the (bipartite) transaction-resource graph.
///
/// We build a random wait-for graph, optionally plant a deadlock ring of
/// configurable size, and let every lock-manager node run the paper's
/// tester; the witness cycle is then decoded back into "transaction T waits
/// for resource R held by ..." form.
///
///   ./deadlock_detection [--transactions=40] [--resources=40] [--waits=70]
///                        [--ring=4] [--seed=3]
#include <cstdio>
#include <string>

#include "core/tester.hpp"
#include "graph/graph.hpp"
#include "graph/subgraph.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using decycle::graph::Vertex;

std::string entity_name(Vertex v, Vertex transactions) {
  std::string name(v < transactions ? "T" : "R");
  name.append(std::to_string(v < transactions ? v : v - transactions));
  return name;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  const auto transactions = static_cast<Vertex>(args.get_u64("transactions", 40));
  const auto resources = static_cast<Vertex>(args.get_u64("resources", 40));
  const std::size_t waits = args.get_u64("waits", 70);
  const auto ring = static_cast<unsigned>(args.get_u64("ring", 4));  // deadlocked txns
  const std::uint64_t seed = args.get_u64("seed", 3);
  args.reject_unknown();

  util::Rng rng(seed);
  graph::GraphBuilder b(transactions + resources);

  // Random wait-for edges: transaction <-> resource relationships. A
  // bipartite graph like this only has even cycles; a cycle of length 2j is
  // exactly a deadlock among j transactions.
  for (std::size_t i = 0; i < waits; ++i) {
    const auto t = static_cast<Vertex>(rng.next_below(transactions));
    const auto r = static_cast<Vertex>(transactions + rng.next_below(resources));
    if (t + 1 == r) continue;  // keep planted ring edges unambiguous below
    b.add_edge(t, r);
  }

  // Plant a deadlock ring among the first `ring` transactions/resources:
  // T0 -> R0 -> T1 -> R1 -> ... -> T(ring-1) -> R(ring-1) -> T0.
  if (ring >= 2) {
    for (unsigned i = 0; i < ring; ++i) {
      b.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(transactions + i));
      b.add_edge(static_cast<Vertex>((i + 1) % ring), static_cast<Vertex>(transactions + i));
    }
  }
  const graph::Graph g = b.build();
  const graph::IdAssignment ids = graph::IdAssignment::identity(g.num_vertices());

  const unsigned k = 2 * ring;  // deadlock among `ring` transactions = C_{2 ring}
  std::printf("wait-for graph: %u transactions, %u resources, %zu edges\n", transactions,
              resources, g.num_edges());
  std::printf("searching for deadlocks of %u transactions (C%u in the wait-for graph)\n", ring, k);

  core::TesterOptions topt;
  topt.k = k;
  topt.epsilon = 0.05;
  topt.seed = seed;
  const auto verdict = core::test_ck_freeness(g, ids, topt);

  if (verdict.accepted) {
    std::printf("no C%u deadlock detected (tester accepted; 1-sided: a real deadlock of this size "
                "would have been reported with its ring)\n", k);
    const bool truly_free = !graph::has_cycle(g, k);
    std::printf("exact oracle agrees: %s\n", truly_free ? "yes (C%u-free)" : "no (tester missed)");
    return 0;
  }

  std::printf("DEADLOCK: %zu lock managers raised alarms; validated ring:\n",
              verdict.rejecting_nodes);
  for (std::size_t i = 0; i < verdict.witness.size(); ++i) {
    const Vertex cur = verdict.witness[i];
    const Vertex next = verdict.witness[(i + 1) % verdict.witness.size()];
    std::printf("  %s waits on %s\n", entity_name(cur, transactions).c_str(),
                entity_name(next, transactions).c_str());
  }
  std::printf("(%llu CONGEST rounds, %zu messages)\n",
              static_cast<unsigned long long>(verdict.stats.rounds_executed),
              verdict.stats.total_messages);
  return 0;
}
