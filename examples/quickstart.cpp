/// \file quickstart.cpp
/// \brief Minimal tour of the public API.
///
/// Builds a small network, runs the distributed Ck-freeness tester from the
/// paper, prints the verdict with its witness cycle, and then uses the
/// deterministic single-edge checker directly.
///
///   ./quickstart [--k=5] [--n=64] [--extra=12] [--seed=7] [--eps=0.1]
#include <cstdio>

#include "core/cycle_detector.hpp"
#include "core/tester.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  const auto k = static_cast<unsigned>(args.get_u64("k", 5));
  const auto n = static_cast<graph::Vertex>(args.get_u64("n", 64));
  const std::size_t extra = args.get_u64("extra", 12);
  const std::uint64_t seed = args.get_u64("seed", 7);
  const double eps = args.get_double("eps", 0.1);
  args.reject_unknown();

  // 1. Build a network: a random connected graph with a few extra edges —
  //    enough for some short cycles to appear.
  util::Rng rng(seed);
  const graph::Graph g = graph::random_connected(n, n - 1 + extra, rng);
  const graph::IdAssignment ids = graph::IdAssignment::random_quadratic(n, rng);
  std::printf("network: n=%u m=%zu (IDs drawn from [0, n^2))\n", g.num_vertices(), g.num_edges());

  // 2. Run the paper's tester: Phase 1 picks random edge ranks, Phase 2 runs
  //    the pruned append-and-forward search, repeated ceil(e^2 ln3 / eps)
  //    times (Theorem 1).
  core::TesterOptions topt;
  topt.k = k;
  topt.epsilon = eps;
  topt.seed = seed;
  const core::TestVerdict verdict = core::test_ck_freeness(g, ids, topt);
  std::printf("tester: C%u-freeness -> %s  (repetitions=%zu, rounds=%llu, max bundle=%zu seqs)\n",
              k, verdict.accepted ? "ACCEPT" : "REJECT", verdict.repetitions,
              static_cast<unsigned long long>(verdict.stats.rounds_executed),
              verdict.max_bundle_sequences);
  if (!verdict.accepted) {
    std::printf("  witness cycle (validated against the graph):");
    for (const auto v : verdict.witness) std::printf(" %u", v);
    std::printf("\n  rejecting nodes: %zu\n", verdict.rejecting_nodes);
  }

  // 3. The deterministic core: check one specific edge. If a Ck passes
  //    through it, detection is certain — no farness assumption (Lemma 2).
  const graph::Edge probe = g.edge(0);
  core::EdgeDetectionOptions eopt;
  eopt.detect.k = k;
  const auto edge_result = core::detect_cycle_through_edge(g, ids, probe, eopt);
  const bool truth = graph::has_cycle_through_edge(g, k, probe.first, probe.second);
  std::printf("edge (%u,%u): checker=%s oracle=%s — always identical\n", probe.first, probe.second,
              edge_result.found ? "C-found" : "none", truth ? "C-found" : "none");
  return edge_result.found == truth ? 0 : 1;
}
