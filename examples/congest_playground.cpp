/// \file congest_playground.cpp
/// \brief The CONGEST substrate on its own: BFS layering, flood-max leader
/// election, and the bandwidth accounting the experiments rely on.
///
/// Useful as a template for writing new NodeProgram algorithms against the
/// simulator (send/receive per round, wake-ups, per-round statistics).
///
///   ./congest_playground [--rows=8] [--cols=8] [--seed=2]
#include <cstdio>
#include <iostream>

#include "congest/algorithms/bfs.hpp"
#include "congest/algorithms/flood_max.hpp"
#include "congest/simulator.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  using congest::Simulator;
  const util::Args args(argc, argv);
  const auto rows = static_cast<graph::Vertex>(args.get_u64("rows", 8));
  const auto cols = static_cast<graph::Vertex>(args.get_u64("cols", 8));
  const std::uint64_t seed = args.get_u64("seed", 2);
  args.reject_unknown();

  const graph::Graph g = graph::grid(rows, cols);
  util::Rng rng(seed);
  const graph::IdAssignment ids = graph::IdAssignment::random_quadratic(g.num_vertices(), rng);
  std::printf("grid %ux%u: n=%u m=%zu, IDs in [0, n^2)\n", rows, cols, g.num_vertices(),
              g.num_edges());

  // --- Distributed BFS from the corner. ---
  Simulator bfs_sim(g, ids,
                    [](graph::Vertex v) { return std::make_unique<congest::BfsProgram>(v == 0); });
  Simulator::Options opts;
  opts.record_rounds = true;
  const auto bfs_stats = bfs_sim.run(opts);
  const auto truth = graph::bfs_distances(g, 0);
  std::size_t mismatches = 0;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto& prog = static_cast<const congest::BfsProgram&>(bfs_sim.program(v));
    if (!prog.distance().has_value() || *prog.distance() != truth[v]) ++mismatches;
  }
  std::printf("BFS: %llu rounds, %zu messages, %zu distance mismatches vs centralized BFS\n",
              static_cast<unsigned long long>(bfs_stats.rounds_executed), bfs_stats.total_messages,
              mismatches);

  // --- Flood-max leader election. ---
  Simulator lead_sim(g, ids,
                     [](graph::Vertex) { return std::make_unique<congest::FloodMaxProgram>(); });
  const auto lead_stats = lead_sim.run(opts);
  graph::NodeId expected = 0;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) expected = std::max(expected, ids.id_of(v));
  std::size_t agree = 0;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    const auto& prog = static_cast<const congest::FloodMaxProgram&>(lead_sim.program(v));
    if (prog.leader() == expected) ++agree;
  }
  std::printf("flood-max: leader %llu agreed by %zu/%u nodes in %llu rounds\n",
              static_cast<unsigned long long>(expected), agree, g.num_vertices(),
              static_cast<unsigned long long>(lead_stats.rounds_executed));

  // --- Bandwidth accounting: the metric behind "normalized rounds". ---
  util::Table table({"round", "active", "messages", "bits", "max link bits"});
  for (std::size_t i = 0; i < std::min<std::size_t>(6, lead_stats.per_round.size()); ++i) {
    const auto& r = lead_stats.per_round[i];
    table.row()
        .cell(r.round)
        .cell(static_cast<std::uint64_t>(r.active_nodes))
        .cell(static_cast<std::uint64_t>(r.messages))
        .cell(r.bits)
        .cell(r.max_link_bits);
  }
  table.print(std::cout, "flood-max per-round profile (first 6 rounds)");
  const std::uint64_t bandwidth = 32;  // a strict B-bit CONGEST link
  std::printf("normalized rounds at B=%llu bits: %llu (logical: %llu)\n",
              static_cast<unsigned long long>(bandwidth),
              static_cast<unsigned long long>(lead_stats.normalized_rounds(bandwidth)),
              static_cast<unsigned long long>(lead_stats.rounds_executed));
  return mismatches == 0 && agree == g.num_vertices() ? 0 : 1;
}
