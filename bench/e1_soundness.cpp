/// \file e1_soundness.cpp
/// \brief Experiment T1 — Theorem 1, 1-sided error.
///
/// Paper claim: "if G is Ck-free, then Pr[every node outputs accept] = 1."
/// For every k and every Ck-free family we run the full tester (with the
/// recommended repetition count) on several seeds; a single rejection would
/// fail the experiment. Witness validation is on, so a rejection could not
/// even be a statistics artifact — it would carry a supposed cycle that the
/// graph oracle then refutes by throwing.
#include <iostream>

#include "core/tester.hpp"
#include "graph/far_generators.hpp"
#include "harness/claims.hpp"
#include "harness/estimator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  const auto kmax = static_cast<unsigned>(args.get_u64("kmax", 8));
  const auto n = static_cast<graph::Vertex>(args.get_u64("n", 56));
  const std::size_t trials = args.get_u64("trials", 6);
  const double eps = args.get_double("eps", 0.15);
  args.reject_unknown();

  harness::ClaimSet claims("E1 soundness (Theorem 1, 1-sided error)");
  util::Table table({"k", "family", "n", "m", "trials x reps", "acceptance", "claim"});

  for (unsigned k = 3; k <= kmax; ++k) {
    for (const auto family : graph::ck_free_families_for(k)) {
      std::size_t accepted = 0;
      std::size_t m_last = 0;
      graph::Vertex n_last = 0;
      const std::size_t reps = core::recommended_repetitions(eps);
      for (std::size_t trial = 0; trial < trials; ++trial) {
        util::Rng rng(1000 * k + 10 * static_cast<unsigned>(family) + trial);
        const graph::Graph g = graph::ck_free_instance(family, k, n, rng);
        const graph::IdAssignment ids =
            graph::IdAssignment::random_quadratic(g.num_vertices(), rng);
        core::TesterOptions topt;
        topt.k = k;
        topt.epsilon = eps;
        topt.seed = 7777 + trial;
        const auto verdict = core::test_ck_freeness(g, ids, topt);
        if (verdict.accepted) ++accepted;
        m_last = g.num_edges();
        n_last = g.num_vertices();
      }
      const bool holds = accepted == trials;
      std::string label = "k=" + std::to_string(k) + " " + graph::family_name(family);
      claims.check("always accept on " + label, holds);
      table.row()
          .cell(static_cast<std::uint64_t>(k))
          .cell(graph::family_name(family))
          .cell(static_cast<std::uint64_t>(n_last))
          .cell(static_cast<std::uint64_t>(m_last))
          .cell(std::to_string(trials) + " x " + std::to_string(reps))
          .cell(static_cast<double>(accepted) / static_cast<double>(trials), 3)
          .cell_ok(holds);
    }
  }

  table.print(std::cout, "T1: acceptance probability on Ck-free instances (must be 1.000)");
  return claims.summarize();
}
