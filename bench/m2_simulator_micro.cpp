/// \file m2_simulator_micro.cpp
/// \brief Micro-benchmark M2 — CONGEST simulator throughput
/// (google-benchmark).
///
/// Measures node-steps per second for the substrate itself (flood-max on
/// grids: all nodes chatty), the event-driven advantage on sparse traffic
/// (single-edge checker on a big ring: only the active front pays), and
/// thread-pool scaling of the step phase.
#include <benchmark/benchmark.h>

#include "congest/algorithms/flood_max.hpp"
#include "congest/simulator.hpp"
#include "core/cycle_detector.hpp"
#include "graph/generators.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace decycle;

void BM_FloodMaxGrid(benchmark::State& state) {
  const auto side = static_cast<graph::Vertex>(state.range(0));
  const graph::Graph g = graph::grid(side, side);
  util::Rng rng(1);
  const graph::IdAssignment ids = graph::IdAssignment::shuffled(g.num_vertices(), rng);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    congest::Simulator sim(g, ids,
                           [](graph::Vertex) { return std::make_unique<congest::FloodMaxProgram>(); });
    const auto stats = sim.run();
    rounds += stats.rounds_executed;
    benchmark::DoNotOptimize(stats.total_messages);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds) *
                          static_cast<std::int64_t>(g.num_vertices()));
  state.counters["n"] = static_cast<double>(g.num_vertices());
}
BENCHMARK(BM_FloodMaxGrid)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void BM_FloodMaxGridParallel(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const graph::Graph g = graph::grid(96, 96);
  util::Rng rng(1);
  const graph::IdAssignment ids = graph::IdAssignment::shuffled(g.num_vertices(), rng);
  util::ThreadPool pool(threads);
  for (auto _ : state) {
    congest::Simulator sim(g, ids,
                           [](graph::Vertex) { return std::make_unique<congest::FloodMaxProgram>(); });
    congest::Simulator::Options opt;
    opt.pool = &pool;
    opt.parallel_threshold = 64;
    benchmark::DoNotOptimize(sim.run(opt).total_messages);
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_FloodMaxGridParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_EdgeCheckerSparseRing(benchmark::State& state) {
  // Event-driven sweet spot: a huge ring where only the neighborhood of the
  // probed edge ever activates beyond round 0.
  const auto n = static_cast<graph::Vertex>(state.range(0));
  const graph::Graph g = graph::cycle(n);
  const graph::IdAssignment ids = graph::IdAssignment::identity(n);
  for (auto _ : state) {
    core::EdgeDetectionOptions opt;
    opt.detect.k = 7;  // ring is C_n, not C7: clean miss after k/2+1 rounds
    benchmark::DoNotOptimize(
        core::detect_cycle_through_edge(g, ids, {0, 1}, opt).found);
  }
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_EdgeCheckerSparseRing)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_EdgeCheckerDense(benchmark::State& state) {
  const auto d = static_cast<graph::Vertex>(state.range(0));
  const graph::Graph g = graph::complete_bipartite(d, d);
  const graph::IdAssignment ids = graph::IdAssignment::identity(g.num_vertices());
  for (auto _ : state) {
    core::EdgeDetectionOptions opt;
    opt.detect.k = 8;
    benchmark::DoNotOptimize(core::detect_cycle_through_edge(g, ids, g.edge(0), opt).found);
  }
}
BENCHMARK(BM_EdgeCheckerDense)->Arg(8)->Arg(16)->Arg(24);

}  // namespace

BENCHMARK_MAIN();
