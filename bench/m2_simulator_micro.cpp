/// \file m2_simulator_micro.cpp
/// \brief Micro-benchmark M2 — CONGEST simulator message-path throughput.
///
/// Measures delivered-message throughput of the arena delivery path against
/// the legacy loop it replaced (binary-search port lookup, per-inbox sort,
/// allocating containers), on three traffic shapes:
///
///   * delivery_dense10k_d24 — the acceptance workload: a 10k-node
///     24-regular circulant graph where every node broadcasts every round,
///     i.e. dense all-to-all-neighbors traffic (~240k messages/round);
///   * floodmax_grid96   — a real algorithm (flood-max leader election) on a
///     96x96 grid, mixing computation with delivery;
///   * sparse_ring_100k  — the event-driven sweet spot: a 100k-node ring
///     where only a relay front is ever active, plus timer-wheel wake-ups.
///
/// Writes machine-readable before/after numbers to BENCH_simulator.json
/// (override with --out=PATH) and asserts that steady-state arena rounds
/// perform zero heap allocations (the process aborts with exit code 1 if
/// either the zero-allocation invariant or cross-mode stats equality is
/// violated). --smoke shrinks every instance for CI.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "congest/algorithms/flood_max.hpp"
#include "congest/simulator.hpp"
#include "graph/generators.hpp"
#include "support/alloc_probe.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace decycle;
using congest::DeliveryMode;
using congest::Simulator;

/// Every node sends its ID on every port each round for a fixed horizon;
/// payloads are a couple of varints, i.e. legal O(log n)-bit CONGEST
/// messages. No per-node state, so the simulator owns every allocation.
class ChattyAllPorts final : public congest::NodeProgram {
 public:
  explicit ChattyAllPorts(std::uint64_t horizon) : horizon_(horizon) {}

  void on_round(congest::Context& ctx, std::span<const congest::Envelope> inbox) override {
    std::uint64_t acc = 0;
    for (const auto& env : inbox) {
      congest::MessageReader r(env.payload);
      while (!r.at_end()) acc ^= r.get_u64();
    }
    if (ctx.round() >= horizon_) return;
    congest::MessageWriter w;
    w.put_u64(ctx.my_id()).put_u64(acc & 0xff);
    ctx.send_all(w.finish());
  }

 private:
  std::uint64_t horizon_;
};

/// Relay around a huge ring: only the token front is active, and every hop
/// also schedules a near wake-up, exercising the timer wheel.
class RingRelay final : public congest::NodeProgram {
 public:
  explicit RingRelay(bool starter, std::uint64_t horizon)
      : starter_(starter), horizon_(horizon) {}

  void on_round(congest::Context& ctx, std::span<const congest::Envelope> inbox) override {
    if (ctx.round() >= horizon_) return;
    if (ctx.round() == 0 && starter_) {
      congest::MessageWriter w;
      w.put_u64(1);
      ctx.send(1, w.finish());
      return;
    }
    for (const auto& env : inbox) {
      congest::MessageReader r(env.payload);
      const std::uint64_t hops = r.get_u64();
      congest::MessageWriter w;
      w.put_u64(hops + 1);
      ctx.send(env.port == 0 ? 1u : 0u, w.finish());  // keep moving away from the sender
      ctx.request_wakeup_at(ctx.round() + 2);         // wheel traffic alongside mail
    }
  }

 private:
  bool starter_;
  std::uint64_t horizon_;
};

struct Measurement {
  double seconds = 0;
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;

  [[nodiscard]] double msgs_per_sec() const { return seconds > 0 ? messages / seconds : 0; }
};

struct Scenario {
  std::string name;
  graph::Vertex n = 0;
  std::size_t edges = 0;
  Measurement legacy;
  Measurement arena;
  /// Work-stealing delivery at each pool size of the --threads sweep.
  std::vector<std::pair<unsigned, Measurement>> threaded;

  [[nodiscard]] double speedup() const {
    return legacy.seconds > 0 && arena.seconds > 0 ? legacy.seconds / arena.seconds : 0;
  }
};

using ProgramFactory = Simulator::ProgramFactory;

/// Best-of-\p reps wall time for a full run. When the program is stateless
/// across runs (\p rerunnable), one simulator is reused with an untimed
/// warm-up run, so the number is steady-state delivery throughput; stateful
/// programs get a fresh simulator per rep (construction untimed).
Measurement measure(const graph::Graph& g, const graph::IdAssignment& ids,
                    const ProgramFactory& factory, DeliveryMode mode, int reps,
                    bool rerunnable, util::ThreadPool* pool = nullptr) {
  Measurement best;
  std::unique_ptr<Simulator> shared;
  Simulator::Options opt;
  opt.delivery = mode;
  opt.pool = pool;
  if (rerunnable) {
    shared = std::make_unique<Simulator>(g, ids, factory);
    (void)shared->run(opt);  // warm every reusable buffer, untimed
  }
  for (int rep = 0; rep < reps; ++rep) {
    std::unique_ptr<Simulator> fresh;
    if (!rerunnable) fresh = std::make_unique<Simulator>(g, ids, factory);
    Simulator& sim = rerunnable ? *shared : *fresh;
    const auto start = std::chrono::steady_clock::now();
    const congest::RunStats stats = sim.run(opt);
    const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - start;
    if (rep == 0 || dt.count() < best.seconds) {
      best.seconds = dt.count();
      best.messages = stats.total_messages;
      best.rounds = stats.rounds_executed;
    }
  }
  return best;
}

bool check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "FAILED: %s\n", what);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_simulator.json";
  std::vector<unsigned> thread_counts = {2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      thread_counts.clear();
      for (const char* p = argv[i] + 10; *p != '\0';) {
        char* end = nullptr;
        const unsigned long t = std::strtoul(p, &end, 10);
        if (end == p) break;
        if (t > 0) thread_counts.push_back(static_cast<unsigned>(t));
        p = *end == ',' ? end + 1 : end;
      }
    }
  }
  const int reps = smoke ? 1 : 3;
  bool ok = true;

  std::vector<Scenario> scenarios;

  // --- Scenario 1: dense delivery on a >=10k-node high-degree instance. ---
  {
    const graph::Vertex n = smoke ? 2000 : 10000;
    const std::uint64_t horizon = smoke ? 6 : 16;
    const graph::Graph g = graph::circulant(n, 12);  // 24-regular
    util::Rng id_rng(2);
    const graph::IdAssignment ids = graph::IdAssignment::shuffled(n, id_rng);
    const auto factory = [horizon](graph::Vertex) {
      return std::make_unique<ChattyAllPorts>(horizon);
    };
    Scenario s;
    s.name = smoke ? "delivery_dense2k_d24" : "delivery_dense10k_d24";
    s.n = n;
    s.edges = g.num_edges();
    s.legacy = measure(g, ids, factory, DeliveryMode::kLegacy, reps, /*rerunnable=*/true);
    s.arena = measure(g, ids, factory, DeliveryMode::kArena, reps, /*rerunnable=*/true);
    ok &= check(s.legacy.messages == s.arena.messages && s.legacy.rounds == s.arena.rounds,
                "dense: legacy and arena disagree on totals");
    // The --threads sweep: work-stealing delivery at each pool size, totals
    // cross-checked against the serial arena run (determinism contract).
    for (const unsigned t : thread_counts) {
      util::ThreadPool pool(t);
      const Measurement m =
          measure(g, ids, factory, DeliveryMode::kArena, reps, /*rerunnable=*/true, &pool);
      ok &= check(m.messages == s.arena.messages && m.rounds == s.arena.rounds,
                  "dense: threaded arena disagrees with serial arena on totals");
      s.threaded.emplace_back(t, m);
    }
    scenarios.push_back(s);
  }

  // --- Scenario 2: a real algorithm (flood-max leader election). ---
  {
    const graph::Vertex side = smoke ? 32 : 96;
    const graph::Graph g = graph::grid(side, side);
    util::Rng id_rng(3);
    const graph::IdAssignment ids = graph::IdAssignment::shuffled(g.num_vertices(), id_rng);
    const auto factory = [](graph::Vertex) {
      return std::make_unique<congest::FloodMaxProgram>();
    };
    Scenario s;
    s.name = smoke ? "floodmax_grid32" : "floodmax_grid96";
    s.n = g.num_vertices();
    s.edges = g.num_edges();
    s.legacy = measure(g, ids, factory, DeliveryMode::kLegacy, reps, /*rerunnable=*/false);
    s.arena = measure(g, ids, factory, DeliveryMode::kArena, reps, /*rerunnable=*/false);
    ok &= check(s.legacy.messages == s.arena.messages && s.legacy.rounds == s.arena.rounds,
                "floodmax: legacy and arena disagree on totals");
    scenarios.push_back(s);
  }

  // --- Scenario 3: event-driven sparse traffic + timer wheel. ---
  {
    const graph::Vertex n = smoke ? 20000 : 100000;
    const std::uint64_t horizon = smoke ? 4000 : 20000;
    const graph::Graph g = graph::cycle(n);
    const graph::IdAssignment ids = graph::IdAssignment::identity(n);
    const auto factory = [horizon](graph::Vertex v) {
      return std::make_unique<RingRelay>(v == 0, horizon);
    };
    Scenario s;
    s.name = smoke ? "sparse_ring_20k" : "sparse_ring_100k";
    s.n = n;
    s.edges = g.num_edges();
    s.legacy = measure(g, ids, factory, DeliveryMode::kLegacy, reps, /*rerunnable=*/true);
    s.arena = measure(g, ids, factory, DeliveryMode::kArena, reps, /*rerunnable=*/true);
    ok &= check(s.legacy.messages == s.arena.messages && s.legacy.rounds == s.arena.rounds,
                "ring: legacy and arena disagree on totals");
    scenarios.push_back(s);
  }

  // --- Zero-allocation assertion: after a warm-up run, a full steady-state
  // arena run must not allocate at all. ---
  std::uint64_t steady_allocs = ~std::uint64_t{0};
  std::uint64_t steady_rounds = 0;
  {
    const graph::Vertex n = smoke ? 1000 : 4000;
    const graph::Graph g = graph::circulant(n, 8);  // 16-regular
    const graph::IdAssignment ids = graph::IdAssignment::identity(n);
    const std::uint64_t horizon = 12;
    Simulator sim(g, ids, [horizon](graph::Vertex) {
      return std::make_unique<ChattyAllPorts>(horizon);
    });
    (void)sim.run();  // warm every reusable buffer
    const std::uint64_t before = decycle::testsupport::allocation_count();
    const congest::RunStats stats = sim.run();
    steady_allocs = decycle::testsupport::allocation_count() - before;
    steady_rounds = stats.rounds_executed;
    ok &= check(steady_allocs == 0, "steady-state arena run performed heap allocations");
  }

  // --- Report. ---
  std::printf("%-22s %12s %12s %14s %14s %9s\n", "scenario", "legacy s", "arena s",
              "legacy msg/s", "arena msg/s", "speedup");
  for (const Scenario& s : scenarios) {
    std::printf("%-22s %12.4f %12.4f %14.3e %14.3e %8.2fx\n", s.name.c_str(),
                s.legacy.seconds, s.arena.seconds, s.legacy.msgs_per_sec(),
                s.arena.msgs_per_sec(), s.speedup());
    for (const auto& [t, m] : s.threaded) {
      std::printf("  + %2u-thread steal    %12s %12.4f %14s %14.3e\n", t, "", m.seconds, "",
                  m.msgs_per_sec());
    }
  }
  std::printf("zero-alloc steady state: %llu allocations over %llu rounds\n",
              static_cast<unsigned long long>(steady_allocs),
              static_cast<unsigned long long>(steady_rounds));

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"m2_simulator_micro\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"baseline\": \"legacy delivery (pre-arena loop)\",\n");
    std::fprintf(f, "  \"scenarios\": [\n");
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      const Scenario& s = scenarios[i];
      const bool last = i + 1 == scenarios.size();
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"n\": %u, \"edges\": %zu,\n"
                   "     \"before\": {\"mode\": \"legacy\", \"seconds\": %.6f, "
                   "\"messages\": %llu, \"rounds\": %llu, \"msgs_per_sec\": %.1f},\n"
                   "     \"after\":  {\"mode\": \"arena\", \"seconds\": %.6f, "
                   "\"messages\": %llu, \"rounds\": %llu, \"msgs_per_sec\": %.1f},\n"
                   "     \"speedup\": %.3f,\n"
                   "     \"threads\": [",
                   s.name.c_str(), s.n, s.edges, s.legacy.seconds,
                   static_cast<unsigned long long>(s.legacy.messages),
                   static_cast<unsigned long long>(s.legacy.rounds),
                   s.legacy.msgs_per_sec(), s.arena.seconds,
                   static_cast<unsigned long long>(s.arena.messages),
                   static_cast<unsigned long long>(s.arena.rounds), s.arena.msgs_per_sec(),
                   s.speedup());
      // Per-thread-count rows through the work-stealing scheduler (empty for
      // scenarios outside the sweep).
      for (std::size_t j = 0; j < s.threaded.size(); ++j) {
        const auto& [t, m] = s.threaded[j];
        std::fprintf(f, "%s\n       {\"threads\": %u, \"seconds\": %.6f, \"msgs_per_sec\": %.1f}",
                     j == 0 ? "" : ",", t, m.seconds, m.msgs_per_sec());
      }
      std::fprintf(f, "%s]}%s\n", s.threaded.empty() ? "" : "\n     ", last ? "" : ",");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"zero_alloc\": {\"verified\": %s, \"steady_rounds\": %llu, "
                 "\"allocations\": %llu}\n}\n",
                 steady_allocs == 0 ? "true" : "false",
                 static_cast<unsigned long long>(steady_rounds),
                 static_cast<unsigned long long>(steady_allocs));
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "FAILED: cannot open %s for writing\n", out_path.c_str());
    ok = false;
  }

  return ok ? 0 : 1;
}
