/// \file e6_rank_collision.cpp
/// \brief Experiment T6 — Lemma 5: Pr[unique minimum rank] >= 1/e².
///
/// Phase 1 draws a rank per edge from [1, m²]; the analysis needs the
/// minimum to be unique. Lemma 5's bound 1/e² ≈ 0.1353 comes from bounding
/// Pr[all m ranks distinct] >= (1 - 1/m)^m; the truth is much higher (the
/// *minimum* colliding is far rarer than any collision). Both the lemma's
/// bound and the all-distinct proxy appear in the table.
#include <cmath>
#include <iostream>

#include "core/phase1.hpp"
#include "harness/claims.hpp"
#include "harness/estimator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  const std::uint64_t budget = args.get_u64("draw_budget", 40'000'000);
  args.reject_unknown();

  harness::ClaimSet claims("E6 rank collisions (Lemma 5)");
  const double bound = std::exp(-2.0);
  util::Table table(
      {"m", "trials", "unique-min rate", "95% CI low", "(1-1/m)^m", "bound 1/e^2", "claim"});
  util::ThreadPool& pool = util::global_pool();

  for (const std::size_t m : {2UL, 5UL, 10UL, 100UL, 1000UL, 10000UL, 100000UL}) {
    const std::size_t trials =
        std::max<std::size_t>(2000, std::min<std::size_t>(200000, budget / m));
    const auto estimate = harness::estimate_rate(
        [m](std::size_t, std::uint64_t seed) {
          util::Rng rng(seed);
          return core::unique_min_rank_trial(m, rng);
        },
        trials, 99, &pool);
    const double birthday = std::pow(1.0 - 1.0 / static_cast<double>(m),
                                     static_cast<double>(m));
    const bool holds = estimate.interval.low > bound;
    claims.check("unique-min rate > 1/e^2 at m=" + std::to_string(m), holds);
    table.row()
        .cell(static_cast<std::uint64_t>(m))
        .cell(static_cast<std::uint64_t>(trials))
        .cell(estimate.rate(), 4)
        .cell(estimate.interval.low, 4)
        .cell(birthday, 4)
        .cell(bound, 4)
        .cell_ok(holds);
  }

  table.print(std::cout, "T6: empirical Pr[unique min rank] with ranks from [1, m^2]");
  return claims.summarize();
}
