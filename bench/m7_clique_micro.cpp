/// \file m7_clique_micro.cpp
/// \brief Micro-benchmark M7 — Congested-Clique h-cycle adaptivity: the
/// detector's cost as a function of how many h-cycles the input contains.
///
/// The CEVW result (arXiv 2408.15132) says clique h-cycle detection gets
/// CHEAPER the more cycles there are: a small random vertex sample already
/// induces a copy when copies abound, so the doubling-sample schedule exits
/// early and the dominant cost — shipping adjacency rows to the collector —
/// shrinks with the cycle count. This bench plants c vertex-disjoint
/// k-cycles into a fixed-n instance, sweeps c across orders of magnitude,
/// and records where the schedule stopped: phases, sampled vertices/edges,
/// rounds, messages, bits, and wall time, at pool sizes 1 and 8.
///
/// Cross-checks (exit 1 on failure):
///   * every planted instance is rejected (the detector is exact drop-free);
///   * multi-threaded runs agree with the single-threaded run on every
///     decision and statistic (the determinism contract);
///   * adaptivity is real: the cycle-richest instance samples no more
///     vertices than the cycle-poorest, and strictly fewer than n.
///
/// Writes BENCH_clique.json (override with --out=PATH); --smoke shrinks n
/// and the sweep for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/clique_hcycle.hpp"
#include "graph/far_generators.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace decycle;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct ThreadRow {
  unsigned threads = 0;
  double seconds = 0;
};

struct SweepRow {
  std::size_t cycles = 0;
  graph::Vertex n = 0;
  std::size_t edges = 0;
  std::uint64_t phases = 0;
  std::uint64_t sampled_vertices = 0;
  std::uint64_t sampled_edges = 0;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t rounds_saved = 0;
  bool early_exit = false;
  std::vector<ThreadRow> threads;
};

bool check(bool okay, const char* what) {
  if (!okay) std::fprintf(stderr, "FAILED: %s\n", what);
  return okay;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_clique.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  bool ok = true;

  constexpr unsigned kK = 5;
  const graph::Vertex target_n = smoke ? 512 : 4096;
  const std::vector<std::size_t> cycle_counts =
      smoke ? std::vector<std::size_t>{1, 8, 64}
            : std::vector<std::size_t>{1, 8, 64, 256, 512};
  const std::vector<unsigned> thread_counts = {1, 8};
  const int reps = smoke ? 1 : 2;

  std::vector<SweepRow> rows;
  for (const std::size_t c : cycle_counts) {
    // Fixed n across the sweep: leaf padding dilutes the planted cycles so
    // only the cycle DENSITY varies, never the graph size the final phase
    // would have to collect.
    util::Rng rng(0x5EED0000 + static_cast<std::uint64_t>(c));
    graph::PlantedOptions popt;
    popt.k = kK;
    popt.num_cycles = c;
    popt.padding_leaves = target_n - c * kK;
    const graph::FarInstance inst = graph::planted_cycles_instance(popt, rng);
    const graph::Vertex n = inst.graph.num_vertices();
    const graph::IdAssignment ids = graph::IdAssignment::identity(n);

    SweepRow row;
    row.cycles = c;
    row.n = n;
    row.edges = inst.graph.num_edges();

    baselines::CliqueHCycleVerdict base;
    for (const unsigned t : thread_counts) {
      std::unique_ptr<util::ThreadPool> pool;
      baselines::CliqueHCycleOptions opt;
      opt.k = kK;
      opt.seed = 0xFA17;
      if (t > 1) {
        pool = std::make_unique<util::ThreadPool>(t);
        opt.pool = pool.get();
      }
      ThreadRow tr;
      tr.threads = t;
      for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto v = baselines::detect_hcycle_clique(inst.graph, ids, opt);
        const double dt = seconds_since(t0);
        if (rep == 0 || dt < tr.seconds) tr.seconds = dt;
        if (t == 1 && rep == 0) {
          base = v;
          row.phases = v.phases;
          row.sampled_vertices = v.sampled_vertices;
          row.sampled_edges = v.sampled_edges;
          row.rounds = v.stats.rounds_executed;
          row.messages = v.stats.total_messages;
          row.bits = v.stats.total_bits;
          row.rounds_saved = v.rounds_saved;
          row.early_exit = v.early_exit;
        }
        ok &= check(!v.accepted, "planted instance must be rejected");
        ok &= check(v.accepted == base.accepted && v.witness == base.witness &&
                        v.phases == base.phases &&
                        v.sampled_vertices == base.sampled_vertices &&
                        v.sampled_edges == base.sampled_edges &&
                        v.stats.rounds_executed == base.stats.rounds_executed &&
                        v.stats.total_messages == base.stats.total_messages &&
                        v.stats.total_bits == base.stats.total_bits,
                    "threaded run disagrees with single-threaded run");
      }
      row.threads.push_back(tr);
      std::printf("clique_hcycle c=%-4zu n=%-5u threads=%u  %8.4fs  phases=%llu "
                  "sampled=%llu rounds=%llu saved=%llu\n",
                  c, n, t, tr.seconds, static_cast<unsigned long long>(row.phases),
                  static_cast<unsigned long long>(row.sampled_vertices),
                  static_cast<unsigned long long>(row.rounds),
                  static_cast<unsigned long long>(row.rounds_saved));
    }
    rows.push_back(row);
  }

  // The adaptivity claim, checked on the recorded sweep: the cycle-richest
  // instance must exit before the full-vertex phase and sample no more than
  // the cycle-poorest one.
  if (rows.size() >= 2) {
    const SweepRow& poor = rows.front();
    const SweepRow& rich = rows.back();
    ok &= check(rich.sampled_vertices <= poor.sampled_vertices,
                "sampled vertices grew with cycle count");
    ok &= check(rich.early_exit && rich.sampled_vertices < rich.n,
                "cycle-rich instance did not exit early");
    ok &= check(rich.bits <= poor.bits, "traffic grew with cycle count");
  }

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"m7_clique_micro\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"hardware_threads\": %u,\n  \"k\": %u,\n",
                 std::thread::hardware_concurrency(), kK);
    std::fprintf(f, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& r = rows[i];
      std::fprintf(f,
                   "    {\"planted_cycles\": %zu, \"n\": %u, \"edges\": %zu, "
                   "\"phases\": %llu, \"sampled_vertices\": %llu, \"sampled_edges\": %llu, "
                   "\"rounds\": %llu, \"messages\": %llu, \"bits\": %llu, "
                   "\"rounds_saved\": %llu, \"early_exit\": %s,\n     \"threads\": [",
                   r.cycles, r.n, r.edges, static_cast<unsigned long long>(r.phases),
                   static_cast<unsigned long long>(r.sampled_vertices),
                   static_cast<unsigned long long>(r.sampled_edges),
                   static_cast<unsigned long long>(r.rounds),
                   static_cast<unsigned long long>(r.messages),
                   static_cast<unsigned long long>(r.bits),
                   static_cast<unsigned long long>(r.rounds_saved),
                   r.early_exit ? "true" : "false");
      for (std::size_t j = 0; j < r.threads.size(); ++j) {
        std::fprintf(f, "%s\n       {\"threads\": %u, \"seconds\": %.6f}", j == 0 ? "" : ",",
                     r.threads[j].threads, r.threads[j].seconds);
      }
      std::fprintf(f, "\n     ]}%s\n", i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "FAILED: cannot open %s for writing\n", out_path.c_str());
    ok = false;
  }

  return ok ? 0 : 1;
}
