/// \file a3_scan_crossover.cpp
/// \brief Ablation A3 — property testing vs exhaustive scanning.
///
/// What does the ε-relaxation buy? The tester costs ⌈e²ln3/ε⌉·(⌊k/2⌋+2)
/// rounds and may miss sparse cycle populations; the exhaustive Phase-2 scan
/// costs m·(⌊k/2⌋+1) rounds and is exact. Sweeping ε at fixed m exposes the
/// crossover ε* = e²ln3·(⌊k/2⌋+2) / (m·(⌊k/2⌋+1)): above it the tester is
/// cheaper (often by orders of magnitude), below it one should simply scan.
/// Both columns must report the planted cycles on the far instance and stay
/// silent on the free one.
#include <cstdio>
#include <iostream>

#include "core/scan.hpp"
#include "core/tester.hpp"
#include "graph/far_generators.hpp"
#include "harness/claims.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  const auto k = static_cast<unsigned>(args.get_u64("k", 5));
  args.reject_unknown();

  harness::ClaimSet claims("A3 tester vs exhaustive scan");

  util::Rng rng(23);
  graph::PlantedOptions popt;
  popt.k = k;
  popt.num_cycles = 6;
  popt.padding_leaves = 120;
  const auto far_inst = graph::planted_cycles_instance(popt, rng);
  const graph::IdAssignment ids = graph::IdAssignment::identity(far_inst.graph.num_vertices());
  const auto m = static_cast<double>(far_inst.graph.num_edges());

  // Exhaustive scan: exact, m*(k/2+1) rounds regardless of eps. The full
  // sweep is the honest round cost — certifying freeness (or not missing a
  // needle) requires visiting every edge; early exit only helps on lucky
  // positive instances.
  core::ScanOptions sopt;
  sopt.detect.k = k;
  sopt.stop_at_first = false;
  const auto scan = core::exhaustive_ck_scan(far_inst.graph, ids, sopt);
  claims.check("scan finds the planted cycles", scan.found);

  const double e2ln3 = 7.389056099 * 1.098612289;  // e^2 * ln 3 ≈ 8.1175
  const double crossover =
      e2ln3 * static_cast<double>(k / 2 + 2) / (m * static_cast<double>(k / 2 + 1));

  util::Table table({"eps", "tester rounds", "scan rounds (exact)", "tester cheaper",
                     "predicted winner", "agree"});
  const double eps_values[] = {0.5, 0.2, 0.05, 0.02, 0.01, 0.005, 0.002};
  for (const double eps : eps_values) {
    core::TesterOptions topt;
    topt.k = k;
    topt.epsilon = eps;
    topt.seed = 3;
    const auto verdict = core::test_ck_freeness(far_inst.graph, ids, topt);
    const bool tester_cheaper = verdict.stats.rounds_executed < scan.schedule_rounds;
    // Within 2x of the crossover the ceilings decide; only check the clear
    // cases.
    const bool clear = eps > 2 * crossover || eps < crossover / 2;
    const bool predicted_tester = eps > crossover;
    const bool agree = !clear || (tester_cheaper == predicted_tester);
    claims.check("crossover prediction at eps=" + util::format_double(eps, 3), agree);
    table.row()
        .cell(eps, 3)
        .cell(verdict.stats.rounds_executed)
        .cell(scan.schedule_rounds)
        .cell(tester_cheaper ? "yes" : "no")
        .cell(predicted_tester ? "tester" : "scan")
        .cell_ok(agree);
  }

  table.print(std::cout, "A3: rounds, tester vs exhaustive scan (m=" +
                             std::to_string(far_inst.graph.num_edges()) +
                             ", predicted crossover eps*=" + util::format_double(crossover, 4) +
                             ")");

  // Accuracy side: a single well-hidden cycle. The scan must find it; the
  // tester at moderate eps may legitimately miss it (it is not eps-far).
  graph::PlantedOptions needle;
  needle.k = k;
  needle.num_cycles = 1;
  needle.padding_leaves = 400;
  const auto needle_inst = graph::planted_cycles_instance(needle, rng);
  const graph::IdAssignment nids =
      graph::IdAssignment::identity(needle_inst.graph.num_vertices());
  core::ScanOptions nopt;
  nopt.detect.k = k;
  const auto needle_scan = core::exhaustive_ck_scan(needle_inst.graph, nids, nopt);
  claims.check("scan finds the single hidden cycle (exactness)", needle_scan.found);
  std::printf("needle instance (m=%zu, one C%u): scan found=%s after %zu edge checks; the\n"
              "tester's guarantee does not cover it (certified eps=%.4f only)\n",
              needle_inst.graph.num_edges(), k, needle_scan.found ? "yes" : "no",
              needle_scan.edges_checked, needle_inst.certified_epsilon());
  return claims.summarize();
}
