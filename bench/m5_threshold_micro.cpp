/// \file m5_threshold_micro.cpp
/// \brief Micro-benchmark M5 — threshold family vs FO17 tester head-to-head.
///
/// Both algorithms answer the same question ("is the instance Ck-free?") on
/// the same instances with the same per-trial seeds, so the comparison is
/// apples-to-apples: wall-clock, rounds, messages, bits, max link load, and
/// detection rate side by side. Three instance shapes:
///
///   * planted_far   — the completeness workload (certified ε-far): the
///     amplified tester needs ⌈e²ln3/ε⌉ repetitions, the threshold family
///     one budgeted sweep;
///   * ckfree_sound  — a high-girth soundness workload: both must accept
///     every trial, the costs show the overhead of proving it;
///   * sparse_gnm    — G(n, 2n) at 4k nodes: the scale shape, where the
///     threshold family's single sweep trades per-round congestion
///     (bounded by budget × track) for a 60-70× round reduction.
///
/// Writes BENCH_threshold.json (override with --out=PATH); --smoke shrinks
/// trial counts and sizes for CI. Exit code 1 if the threshold family ever
/// rejects a provably Ck-free instance (soundness is asserted, not hoped).
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/tester.hpp"
#include "core/threshold/threshold_tester.hpp"
#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "harness/estimator.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using namespace decycle;

struct AlgoResult {
  double seconds = 0.0;
  std::uint64_t detections = 0;
  std::uint64_t rounds_total = 0;
  std::uint64_t messages_total = 0;
  std::uint64_t bits_total = 0;
  std::uint64_t max_link_bits = 0;
};

struct Workload {
  const char* name;
  bool ck_free = false;  ///< soundness workload: any detection is a failure
  graph::Graph graph;
  unsigned k = 5;
  std::size_t trials = 0;
};

AlgoResult run_tester(const Workload& w, const graph::IdAssignment& ids) {
  AlgoResult out;
  congest::Simulator sim(w.graph, ids);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < w.trials; ++t) {
    core::TesterOptions opt;
    opt.k = w.k;
    opt.epsilon = 0.125;
    opt.seed = harness::trial_seed(404, t);
    const core::TestVerdict v = core::test_ck_freeness(sim, opt);
    out.detections += v.accepted ? 0 : 1;
    out.rounds_total += v.stats.rounds_executed;
    out.messages_total += v.stats.total_messages;
    out.bits_total += v.stats.total_bits;
    out.max_link_bits = std::max(out.max_link_bits, v.stats.max_link_bits);
  }
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return out;
}

AlgoResult run_threshold(const Workload& w, const graph::IdAssignment& ids) {
  AlgoResult out;
  congest::Simulator sim(w.graph, ids);
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < w.trials; ++t) {
    core::threshold::ThresholdOptions opt;
    opt.k = w.k;
    opt.seed = harness::trial_seed(404, t);  // same per-trial seeds as the tester
    const auto v = core::threshold::test_ck_freeness_threshold(sim, opt);
    out.detections += v.verdict.accepted ? 0 : 1;
    out.rounds_total += v.verdict.stats.rounds_executed;
    out.messages_total += v.verdict.stats.total_messages;
    out.bits_total += v.verdict.stats.total_bits;
    out.max_link_bits = std::max(out.max_link_bits, v.verdict.stats.max_link_bits);
  }
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return out;
}

std::string algo_json(const char* mode, const AlgoResult& r, std::size_t trials) {
  char line[512];
  std::snprintf(line, sizeof(line),
                "{\"mode\": \"%s\", \"seconds\": %.6f, \"detection_rate\": %.4f, "
                "\"rounds_mean\": %.2f, \"messages_total\": %llu, \"bits_total\": %llu, "
                "\"max_link_bits\": %llu}",
                mode, r.seconds,
                trials ? static_cast<double>(r.detections) / static_cast<double>(trials) : 0.0,
                trials ? static_cast<double>(r.rounds_total) / static_cast<double>(trials) : 0.0,
                static_cast<unsigned long long>(r.messages_total),
                static_cast<unsigned long long>(r.bits_total),
                static_cast<unsigned long long>(r.max_link_bits));
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const std::string out_path = args.get_string("out", "BENCH_threshold.json");
  args.reject_unknown();

  util::Rng rng(0xBE5);
  std::vector<Workload> workloads;
  {
    graph::PlantedOptions popt;
    popt.k = 5;
    popt.num_cycles = smoke ? 8 : 40;
    Workload w;
    w.name = "planted_far";
    w.graph = graph::planted_cycles_instance(popt, rng).graph;
    w.trials = smoke ? 8 : 64;
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "ckfree_sound";
    w.ck_free = true;
    w.graph = graph::ck_free_instance(graph::CkFreeFamily::kHighGirth, 5,
                                      smoke ? 48 : 200, rng);
    w.trials = smoke ? 8 : 64;
    workloads.push_back(std::move(w));
  }
  {
    Workload w;
    w.name = "sparse_gnm";
    const graph::Vertex n = smoke ? 512 : 4096;
    w.graph = graph::erdos_renyi_gnm(n, 2 * static_cast<std::size_t>(n), rng);
    w.trials = smoke ? 2 : 8;
    workloads.push_back(std::move(w));
  }

  std::string doc = "{\n  \"bench\": \"m5_threshold_micro\",\n  \"smoke\": ";
  doc += smoke ? "true" : "false";
  doc += ",\n  \"baseline\": \"FO17 amplified tester (eps=0.125)\",\n"
         "  \"contender\": \"threshold family (budget=16, track=8, 1 sweep)\",\n"
         "  \"workloads\": [\n";

  bool ok = true;
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    const graph::IdAssignment ids = graph::IdAssignment::identity(w.graph.num_vertices());
    const AlgoResult tester = run_tester(w, ids);
    const AlgoResult thresh = run_threshold(w, ids);
    if (w.ck_free && (tester.detections != 0 || thresh.detections != 0)) {
      std::fprintf(stderr, "FAIL: %s — rejection on a Ck-free workload\n", w.name);
      ok = false;
    }
    const double speedup = thresh.seconds > 0 ? tester.seconds / thresh.seconds : 0.0;
    const double round_cut =
        thresh.rounds_total > 0
            ? static_cast<double>(tester.rounds_total) / static_cast<double>(thresh.rounds_total)
            : 0.0;
    char head[384];
    std::snprintf(head, sizeof(head),
                  "    {\"name\": \"%s\", \"vertices\": %llu, \"edges\": %llu, \"k\": %u, "
                  "\"trials\": %llu,\n",
                  w.name, static_cast<unsigned long long>(w.graph.num_vertices()),
                  static_cast<unsigned long long>(w.graph.num_edges()), w.k,
                  static_cast<unsigned long long>(w.trials));
    doc += head;
    doc += "     \"tester\": " + algo_json("fo17_tester", tester, w.trials) + ",\n";
    doc += "     \"threshold\": " + algo_json("threshold_sweep", thresh, w.trials) + ",\n";
    char tail[160];
    std::snprintf(tail, sizeof(tail),
                  "     \"time_speedup\": %.3f, \"round_reduction\": %.1f}%s\n", speedup,
                  round_cut, i + 1 < workloads.size() ? "," : "");
    doc += tail;
    std::printf("%-14s tester %.3fs (det %.2f)  threshold %.3fs (det %.2f)  speedup %.2fx  "
                "rounds %.0fx\n",
                w.name, tester.seconds,
                static_cast<double>(tester.detections) / static_cast<double>(w.trials),
                thresh.seconds,
                static_cast<double>(thresh.detections) / static_cast<double>(w.trials), speedup,
                round_cut);
  }
  doc += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(doc.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
