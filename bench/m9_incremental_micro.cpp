/// \file m9_incremental_micro.cpp
/// \brief Micro-benchmark M9 — incremental cycle-detection throughput.
///
/// Gates the PR 9 incremental service on three axes, at n ∈ {10k, 100k, 1M}
/// on seeded duplicate-free random streams of 2n inserts:
///
///   * single_* — raw ForestConnectivity::insert_fast throughput (the
///     union-find hot path): the acceptance gate is >= 2M inserts/sec
///     single-thread at n=1M (full mode only), plus the DagLevels
///     directed-acyclic maintenance rate on the same size;
///   * batch_* — the same stream through IncrementalSession::apply with a
///     live checkpoint, swept over batch sizes: every non-empty batch pays
///     one bump_epoch + purge, so the sweep prices the epoch/purge
///     amortization; closure totals must equal the raw single-thread run
///     (same stream, same detector) — any disagreement exits 1;
///   * lanes_* — 8 independent per-lane streams with per-lane detectors
///     dispatched via engine::for_lanes across thread counts {1, 4, 8};
///     per-lane closure/insert totals land in indexed slots and their sums
///     must be identical for every thread count — any disagreement exits 1.
///
/// Writes BENCH_incremental.json (override with --out=PATH); --smoke
/// shrinks to {10k, 50k} for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "engine/lanes.hpp"
#include "incremental/incremental.hpp"
#include "incremental/session.hpp"
#include "incremental/stream.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace decycle;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

bool check(bool okay, const char* what) {
  if (!okay) std::fprintf(stderr, "FAILED: %s\n", what);
  return okay;
}

double rate(std::size_t inserts, double seconds) {
  return seconds > 0 ? static_cast<double>(inserts) / seconds : 0.0;
}

struct BatchRow {
  std::size_t batch = 0;
  double seconds = 0;
  double inserts_per_sec = 0;
};

struct ThreadRow {
  unsigned threads = 0;
  double seconds = 0;
  double inserts_per_sec = 0;
};

struct SizeRow {
  graph::Vertex n = 0;
  std::size_t stream_inserts = 0;
  std::uint64_t closures = 0;     ///< of the single-thread stream
  double single_s = 0;            ///< raw insert_fast sweep
  double single_inserts_per_sec = 0;
  double dag_inserts_per_sec = 0;  ///< DagLevels on a directed-acyclic stream
  graph::Vertex lane_n = 0;
  std::size_t lane_inserts = 0;  ///< per lane
  std::vector<BatchRow> batches;
  std::vector<ThreadRow> lanes;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_incremental.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  bool ok = true;

  const std::vector<graph::Vertex> sizes =
      smoke ? std::vector<graph::Vertex>{10'000, 50'000}
            : std::vector<graph::Vertex>{10'000, 100'000, 1'000'000};
  const std::vector<std::size_t> batch_sizes =
      smoke ? std::vector<std::size_t>{1, 64, 1024}
            : std::vector<std::size_t>{1, 256, 16'384};
  const std::vector<unsigned> thread_counts = {1, 4, 8};
  constexpr std::size_t kLanes = 8;

  std::vector<SizeRow> rows;
  incremental::ForestConnectivity fc;  // reused across sizes: reset() steady state
  incremental::DagLevels dag;
  for (std::size_t si = 0; si < sizes.size(); ++si) {
    const graph::Vertex n = sizes[si];
    SizeRow row;
    row.n = n;

    // --- Single-thread hot path: raw union-find verdicts. ---
    incremental::StreamSpec spec;
    spec.n = n;
    spec.inserts = 2 * static_cast<std::size_t>(n);
    spec.seed = 9'100 + si;
    const incremental::InsertStream stream = incremental::generate_stream(spec);
    row.stream_inserts = stream.inserts.size();
    {
      fc.reset(n);
      const auto t0 = std::chrono::steady_clock::now();
      std::uint64_t closures = 0;
      for (const auto& [u, v] : stream.inserts) closures += fc.insert_fast(u, v) ? 1 : 0;
      row.single_s = seconds_since(t0);
      row.closures = closures;
      row.single_inserts_per_sec = rate(row.stream_inserts, row.single_s);
      ok &= check(closures == fc.closures(), "detector closure counter disagrees with sweep");
    }

    // --- DagLevels maintenance on a provably acyclic directed stream. ---
    {
      incremental::StreamSpec dspec = spec;
      dspec.directed = true;
      dspec.acyclic = true;
      const incremental::InsertStream dstream = incremental::generate_stream(dspec);
      dag.reset(n);
      const auto t0 = std::chrono::steady_clock::now();
      for (const auto& [u, v] : dstream.inserts) {
        if (dag.insert(u, v).closed_cycle) break;
      }
      row.dag_inserts_per_sec = rate(dstream.inserts.size(), seconds_since(t0));
      ok &= check(!dag.cyclic(), "DagLevels reported a cycle on an acyclic stream");
    }

    // --- Batch sizes through the session (epoch/purge amortization). ---
    for (const std::size_t batch : batch_sizes) {
      engine::DetectionEngine engine;
      incremental::IncrementalSession session(engine, "m9", n);
      (void)session.checkpoint();  // pin exists: every apply bumps + purges
      std::uint64_t closures = 0;
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < stream.inserts.size(); i += batch) {
        const std::size_t len = std::min(batch, stream.inserts.size() - i);
        closures += session.apply({stream.inserts.data() + i, len}).closures;
      }
      BatchRow br;
      br.batch = batch;
      br.seconds = seconds_since(t0);
      br.inserts_per_sec = rate(row.stream_inserts, br.seconds);
      row.batches.push_back(br);
      ok &= check(closures == row.closures, "session closures disagree with the raw sweep");
    }

    // --- Lane fan-out: independent streams, totals thread-count-invariant. ---
    row.lane_n = std::max<graph::Vertex>(1'024, n / kLanes);
    std::vector<incremental::InsertStream> lane_streams(kLanes);
    std::vector<incremental::ForestConnectivity> lane_detectors(kLanes);
    for (std::size_t l = 0; l < kLanes; ++l) {
      incremental::StreamSpec ls;
      ls.n = row.lane_n;
      ls.inserts = 2 * static_cast<std::size_t>(row.lane_n);
      ls.seed = engine::trial_seed(9'200 + si, l);
      lane_streams[l] = incremental::generate_stream(ls);
      lane_detectors[l].reset(row.lane_n);
    }
    row.lane_inserts = lane_streams[0].inserts.size();
    std::uint64_t base_closures = 0;
    bool have_base = false;
    for (const unsigned t : thread_counts) {
      std::unique_ptr<util::ThreadPool> pool;
      if (t > 1) pool = std::make_unique<util::ThreadPool>(t);
      std::vector<std::uint64_t> slot_closures(kLanes, 0);  // per-unit indexed slots
      const auto t0 = std::chrono::steady_clock::now();
      engine::for_lanes(pool.get(), kLanes, nullptr,
                        [&](std::size_t, std::size_t begin, std::size_t end) {
                          for (std::size_t l = begin; l < end; ++l) {
                            incremental::ForestConnectivity& d = lane_detectors[l];
                            d.reset(row.lane_n);
                            std::uint64_t c = 0;
                            for (const auto& [u, v] : lane_streams[l].inserts) {
                              c += d.insert_fast(u, v) ? 1 : 0;
                            }
                            slot_closures[l] = c;
                          }
                        });
      ThreadRow tr;
      tr.threads = t;
      tr.seconds = seconds_since(t0);
      tr.inserts_per_sec = rate(kLanes * row.lane_inserts, tr.seconds);
      row.lanes.push_back(tr);
      std::uint64_t total = 0;
      for (const std::uint64_t c : slot_closures) total += c;
      if (!have_base) {
        base_closures = total;
        have_base = true;
      }
      ok &= check(total == base_closures, "threaded lane totals disagree with single-thread");
    }

    rows.push_back(row);
    std::printf("n=%-9u single %10.0f ins/s  dag %10.0f ins/s  closures=%llu\n", row.n,
                row.single_inserts_per_sec, row.dag_inserts_per_sec,
                static_cast<unsigned long long>(row.closures));
    for (const BatchRow& br : row.batches) {
      std::printf("  batch=%-6zu %8.4fs  %10.0f ins/s\n", br.batch, br.seconds,
                  br.inserts_per_sec);
    }
    for (const ThreadRow& tr : row.lanes) {
      std::printf("  lanes=8 threads=%u  %8.4fs  %10.0f ins/s aggregate\n", tr.threads,
                  tr.seconds, tr.inserts_per_sec);
    }
  }

  // The headline acceptance number: >= 2M raw inserts/sec single-thread at
  // n=1M (full mode only — smoke sizes differ).
  if (!smoke) {
    for (const SizeRow& row : rows) {
      if (row.n == 1'000'000) {
        ok &= check(row.single_inserts_per_sec >= 2e6,
                    "single-thread insert rate under 2M/s at n=1M");
      }
    }
  }

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"m9_incremental_micro\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"hardware_threads\": %u,\n", std::thread::hardware_concurrency());
    std::fprintf(f, "  \"workload\": \"seeded duplicate-free random streams, 2n inserts\",\n");
    std::fprintf(f, "  \"sizes\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SizeRow& r = rows[i];
      std::fprintf(f,
                   "    {\"n\": %u, \"stream_inserts\": %zu, \"closures\": %llu,\n"
                   "     \"single\": {\"seconds\": %.6f, \"inserts_per_sec\": %.0f},\n"
                   "     \"dag_inserts_per_sec\": %.0f,\n     \"batch\": [",
                   r.n, r.stream_inserts, static_cast<unsigned long long>(r.closures),
                   r.single_s, r.single_inserts_per_sec, r.dag_inserts_per_sec);
      for (std::size_t j = 0; j < r.batches.size(); ++j) {
        const BatchRow& b = r.batches[j];
        std::fprintf(f, "%s\n       {\"batch\": %zu, \"seconds\": %.6f, \"inserts_per_sec\": %.0f}",
                     j == 0 ? "" : ",", b.batch, b.seconds, b.inserts_per_sec);
      }
      std::fprintf(f, "\n     ],\n     \"lane_n\": %u, \"lane_inserts\": %zu, \"lanes\": [",
                   r.lane_n, r.lane_inserts);
      for (std::size_t j = 0; j < r.lanes.size(); ++j) {
        const ThreadRow& t = r.lanes[j];
        std::fprintf(
            f, "%s\n       {\"threads\": %u, \"seconds\": %.6f, \"inserts_per_sec\": %.0f}",
            j == 0 ? "" : ",", t.threads, t.seconds, t.inserts_per_sec);
      }
      std::fprintf(f, "\n     ]}%s\n", i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "FAILED: cannot open %s for writing\n", out_path.c_str());
    ok = false;
  }

  return ok ? 0 : 1;
}
