/// \file e4_edge_checker.cpp
/// \brief Experiment T4 — Lemma 2: the single-edge checker is exact.
///
/// "Our algorithm for testing the existence of a k-cycle passing through a
/// given edge e does not rely on the ε-farness assumption... even if there
/// is just a single k-cycle passing through e, that cycle will be detected."
/// For every edge of random instances the distributed checker must agree
/// with the centralized exact oracle, and every hit must carry a validated
/// witness. Also reports wall-clock per check (simulation cost, not a
/// round-complexity statement).
#include <iostream>

#include "core/cycle_detector.hpp"
#include "graph/generators.hpp"
#include "graph/subgraph.hpp"
#include "harness/claims.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  const auto n = static_cast<graph::Vertex>(args.get_u64("n", 18));
  const std::size_t m = args.get_u64("m", 30);
  const std::size_t graphs = args.get_u64("graphs", 4);
  args.reject_unknown();

  harness::ClaimSet claims("E4 single-edge checker exactness (Lemma 2)");
  util::Table table({"k", "graphs", "edges checked", "positives", "mismatches", "us/check",
                     "max rounds", "claim"});

  for (unsigned k = 3; k <= 8; ++k) {
    std::size_t checked = 0, positives = 0, mismatches = 0;
    std::uint64_t max_rounds = 0;
    util::WallTimer timer;
    for (std::size_t trial = 0; trial < graphs; ++trial) {
      util::Rng rng(100 * k + trial);
      const graph::Graph g = graph::erdos_renyi_gnm(n, m, rng);
      const graph::IdAssignment ids = graph::IdAssignment::random_quadratic(n, rng);
      for (const auto& e : g.edges()) {
        core::EdgeDetectionOptions opt;
        opt.detect.k = k;
        const auto result = core::detect_cycle_through_edge(g, ids, e, opt);
        const bool truth = graph::has_cycle_through_edge(g, k, e.first, e.second);
        ++checked;
        if (result.found) ++positives;
        if (result.found != truth) ++mismatches;
        max_rounds = std::max(max_rounds, result.stats.rounds_executed);
      }
    }
    const double us = timer.micros() / static_cast<double>(checked);
    const bool exact = mismatches == 0;
    const bool rounds_ok = max_rounds <= k / 2 + 1;
    claims.check("exact for k=" + std::to_string(k), exact);
    claims.check("rounds <= k/2+1 for k=" + std::to_string(k), rounds_ok);
    table.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(static_cast<std::uint64_t>(graphs))
        .cell(static_cast<std::uint64_t>(checked))
        .cell(static_cast<std::uint64_t>(positives))
        .cell(static_cast<std::uint64_t>(mismatches))
        .cell(us, 1)
        .cell(max_rounds)
        .cell_ok(exact && rounds_ok);
  }

  table.print(std::cout, "T4: distributed checker vs exact oracle, every edge of G(n,m)");
  return claims.summarize();
}
