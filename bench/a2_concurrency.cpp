/// \file a2_concurrency.cpp
/// \brief Ablation A2 — the prioritized search under full concurrency.
///
/// In Phase 1 every node launches Phase 2 for its own minimum-rank edge;
/// executions collide and are arbitrated by (rank, u, v) priority. The
/// guarantee used in Theorem 1's proof is only about the globally minimal
/// edge (never preempted); all other executions are best-effort. This
/// experiment measures what concurrency does in practice:
///
///   isolated model  — detection probability if ONLY the global minimum ran:
///                     Pr[unique minimum's edge lies on a k-cycle],
///                     estimated by drawing ranks centrally and consulting
///                     the exact oracle;
///   concurrent      — the real tester's per-repetition detection rate.
///
/// Expectation: concurrent >= isolated (surviving secondary executions add
/// bonus detections, discarding only removes them), and soundness is
/// preserved (every concurrent rejection validated internally).
#include <atomic>
#include <iostream>

#include "core/tester.hpp"
#include "graph/far_generators.hpp"
#include "graph/subgraph.hpp"
#include "harness/claims.hpp"
#include "harness/estimator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  const std::size_t trials = args.get_u64("trials", 300);
  args.reject_unknown();

  harness::ClaimSet claims("A2 concurrency (prioritized search)");
  util::Table table({"instance", "k", "isolated rate", "concurrent rate", "switches/run",
                     "discards/run", "claim"});
  util::ThreadPool& pool = util::global_pool();

  struct Case {
    std::string name;
    graph::FarInstance inst;
    unsigned k;
  };
  util::Rng gen_rng(8);
  std::vector<Case> cases;
  {
    graph::PlantedOptions p;
    p.k = 5;
    p.num_cycles = 6;
    p.padding_leaves = 40;
    cases.push_back({"planted C5 + padding", graph::planted_cycles_instance(p, gen_rng), 5});
    graph::NoisyFarOptions nf;
    nf.k = 6;
    nf.num_cycles = 6;
    nf.background_n = 90;
    nf.background_m = 150;
    cases.push_back({"noisy C6", graph::noisy_far_instance(nf, gen_rng), 6});
    cases.push_back({"layered C5", graph::layered_instance(5, 9, 3, gen_rng), 5});
  }

  for (const auto& c : cases) {
    const graph::Graph& g = c.inst.graph;
    const graph::IdAssignment ids = graph::IdAssignment::identity(g.num_vertices());

    // Which edges lie on a k-cycle (once, centrally).
    std::vector<char> on_cycle(g.num_edges(), 0);
    for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto [u, v] = g.edge(e);
      on_cycle[e] = graph::has_cycle_through_edge(g, c.k, u, v) ? 1 : 0;
    }

    // Isolated model: unique min rank AND its edge on a cycle.
    const auto isolated = harness::estimate_rate(
        [&](std::size_t, std::uint64_t seed) {
          util::Rng rng(seed);
          const std::uint64_t range =
              static_cast<std::uint64_t>(g.num_edges()) * g.num_edges();
          std::uint64_t best = ~std::uint64_t{0};
          std::size_t best_edge = 0, best_count = 0;
          for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
            const std::uint64_t r = core::draw_rank(rng, range);
            if (r < best) {
              best = r;
              best_edge = e;
              best_count = 1;
            } else if (r == best) {
              ++best_count;
            }
          }
          return best_count == 1 && on_cycle[best_edge] == 1;
        },
        trials, 555, &pool);

    // Concurrent: one-repetition tester runs.
    std::atomic<std::size_t> switches{0}, discards{0};
    const auto concurrent = harness::estimate_rate(
        [&](std::size_t, std::uint64_t seed) {
          core::TesterOptions topt;
          topt.k = c.k;
          topt.repetitions = 1;
          topt.seed = seed;
          const auto verdict = core::test_ck_freeness(g, ids, topt);
          switches.fetch_add(verdict.total_switches, std::memory_order_relaxed);
          discards.fetch_add(verdict.total_discarded, std::memory_order_relaxed);
          return !verdict.accepted;
        },
        trials, 777, &pool);

    // Wilson intervals overlap handling: require concurrent point estimate
    // to clear the isolated lower bound (bonus detections never hurt).
    const bool holds = concurrent.rate() >= isolated.interval.low;
    claims.check("concurrent >= isolated on " + c.name, holds);
    table.row()
        .cell(c.name)
        .cell(static_cast<std::uint64_t>(c.k))
        .cell(isolated.rate(), 3)
        .cell(concurrent.rate(), 3)
        .cell(static_cast<double>(switches.load()) / static_cast<double>(trials), 1)
        .cell(static_cast<double>(discards.load()) / static_cast<double>(trials), 1)
        .cell_ok(holds);
  }

  table.print(std::cout,
              "A2: per-repetition detection — isolated-minimum model vs concurrent tester");
  return claims.summarize();
}
