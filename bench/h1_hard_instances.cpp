/// \file h1_hard_instances.cpp
/// \brief H1 — dense shared-vertex C5 packings (Behrend-graph substitute).
///
/// The paper ([20], cited in §1.1) uses Behrend-graph constructions to show
/// that the sampling techniques behind the k <= 4 testers cannot detect
/// C_k for k >= 5 in O(1) rounds: those instances pack many edge-disjoint
/// k-cycles through shared high-degree vertices, so local sampling almost
/// never assembles a full cycle. Building literal Behrend graphs requires
/// progression-free sets; the layered construction here is the substitute
/// (documented in DESIGN.md/EXPERIMENTS.md): s·g edge-disjoint C5s, every
/// vertex on g of them, degree 2g — the same operative property.
///
/// Measurements: Algorithm 1's detection rate at the prescribed budget,
/// bundle sizes against the Lemma 3 bound (density must NOT inflate them),
/// and the naive forwarder's bundle growth for contrast.
#include <iostream>

#include "core/cycle_detector.hpp"
#include "core/tester.hpp"
#include "graph/far_generators.hpp"
#include "harness/claims.hpp"
#include "harness/estimator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  const std::size_t trials = args.get_u64("trials", 24);
  const auto k = static_cast<unsigned>(args.get_u64("k", 5));
  args.reject_unknown();

  harness::ClaimSet claims("H1 hard instances (Behrend substitute)");
  util::Table table({"layers s", "shifts g", "m", "cycles/vertex", "detect rate", "max |S|",
                     "Lemma3 bound", "naive max |S|", "claim"});
  util::ThreadPool& pool = util::global_pool();

  std::uint64_t bound = 1;
  for (unsigned t = 2; t <= k / 2; ++t) bound = std::max(bound, core::lemma3_bound(k, t));

  for (const auto& [s, shifts] : std::vector<std::pair<graph::Vertex, unsigned>>{
           {9, 2}, {9, 4}, {13, 6}, {17, 8}}) {
    util::Rng rng(19 * s + shifts);
    const auto inst = graph::layered_instance(k, s, shifts, rng);
    const graph::IdAssignment ids = graph::IdAssignment::identity(inst.graph.num_vertices());

    const auto detection = harness::estimate_rate(
        [&](std::size_t, std::uint64_t seed) {
          core::TesterOptions topt;
          topt.k = k;
          topt.epsilon = inst.certified_epsilon();
          topt.seed = seed;
          return !core::test_ck_freeness(inst.graph, ids, topt).accepted;
        },
        trials, 31 * s, &pool);

    core::EdgeDetectionOptions eopt;
    eopt.detect.k = k;
    const auto pruned = core::detect_cycle_through_edge(inst.graph, ids, inst.graph.edge(0), eopt);
    core::EdgeDetectionOptions nopt;
    nopt.detect.k = k;
    nopt.detect.pruning = core::PruningMode::kNaive;
    nopt.detect.naive_cap = 1u << 20;
    const auto naive = core::detect_cycle_through_edge(inst.graph, ids, inst.graph.edge(0), nopt);

    const bool detect_ok = detection.rate() >= 2.0 / 3.0;
    const bool bound_ok = pruned.max_bundle_sequences <= bound && !pruned.overflow;
    claims.check("detection >= 2/3 at s=" + std::to_string(s) + " g=" + std::to_string(shifts),
                 detect_ok);
    claims.check("bundles bounded at s=" + std::to_string(s) + " g=" + std::to_string(shifts),
                 bound_ok);
    table.row()
        .cell(static_cast<std::uint64_t>(s))
        .cell(static_cast<std::uint64_t>(shifts))
        .cell(static_cast<std::uint64_t>(inst.graph.num_edges()))
        .cell(static_cast<std::uint64_t>(shifts))  // each vertex lies on `shifts` planted cycles
        .cell(detection.rate(), 3)
        .cell(static_cast<std::uint64_t>(pruned.max_bundle_sequences))
        .cell(bound)
        .cell(static_cast<std::uint64_t>(naive.max_bundle_sequences))
        .cell_ok(detect_ok && bound_ok);
  }

  table.print(std::cout,
              "H1: layered C" + std::to_string(k) +
                  " packings — detection and bundle bounds under density");
  return claims.summarize();
}
