/// \file b1_specialized.cpp
/// \brief Comparison B1 — the paper's algorithm vs the specialized testers
/// it generalizes ([7] for triangles, [20] for C4) and the centralized
/// color-coding reference.
///
/// The paper's point is qualitative: [7]/[20]-style sampling works for
/// k <= 4 and provably cannot extend to k >= 5, while Algorithm 1 covers
/// every k at O(1/ε) rounds. The table is built by iterating the detector
/// registry (core/detector.hpp): every registered algorithm whose
/// capabilities admit k runs on the same certified instances through the
/// one unified interface — detection rate on the ε-far instance, acceptance
/// on the Ck-free instance, rounds used. Capability gating is what renders
/// the paper's contribution visible: at k = 5 the specialized testers
/// simply vanish from the table (their k range excludes it), leaving only
/// the general algorithms.
///
/// Claims: every detector must accept the free instance (1-sided error);
/// the property testers (tester, threshold, and the specialized ones inside
/// their k range, at their prescribed budgets) must detect at rate >= 2/3.
/// The edge checker (one random edge per trial — detection scales with the
/// fraction of edges on cycles) and single-δ color coding report their
/// rates without a detection claim.
#include <iostream>
#include <string>
#include <string_view>

#include "core/detector.hpp"
#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "harness/claims.hpp"
#include "harness/estimator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  const std::size_t trials = args.get_u64("trials", 40);
  args.reject_unknown();

  harness::ClaimSet claims("B1 specialized-tester comparison");
  util::Table table({"k", "algorithm", "far-instance detect", "free-instance accept", "rounds",
                     "claim"});
  util::ThreadPool& pool = util::global_pool();
  const core::DetectorRegistry& registry = core::DetectorRegistry::builtin();

  for (const unsigned k : {3u, 4u, 5u}) {
    util::Rng rng(41 * k);
    graph::PlantedOptions popt;
    popt.k = k;
    popt.num_cycles = 6;
    popt.padding_leaves = 30;
    const auto far_inst = graph::planted_cycles_instance(popt, rng);
    const graph::Graph free_inst =
        graph::ck_free_instance(k % 2 == 1 ? graph::CkFreeFamily::kBipartite
                                           : graph::CkFreeFamily::kHighGirth,
                                k, 60, rng);
    const double eps = far_inst.certified_epsilon();
    const graph::IdAssignment far_ids =
        graph::IdAssignment::identity(far_inst.graph.num_vertices());
    const graph::IdAssignment free_ids = graph::IdAssignment::identity(free_inst.num_vertices());

    std::size_t det_index = 0;
    for (const core::Detector* det : registry.detectors()) {
      ++det_index;
      // Capability gating, not special cases: a detector whose k range
      // excludes this k (c4 at k != 4, triangle at k != 3) has no row.
      if (!registry.validate_k(*det, k).empty()) continue;
      const std::string_view name = det->name();

      core::DetectorOptions base;
      base.k = k;
      base.epsilon = eps;
      // The specialized samplers run at their prescribed O(1/ε²)-style
      // iteration budget; everything else uses its own default.
      if (name == "c4" || name == "triangle") base.repetitions = 256;

      const auto far_rate = harness::estimate_rate_lanes(
          harness::detector_lanes(*det, far_inst.graph, far_ids, base), trials,
          6000 + 100 * det_index + k, &pool);

      core::DetectorOptions free_opt = base;
      free_opt.seed = 5;
      const bool free_ok = det->run_fresh(free_inst, free_ids, free_opt).accepted;

      // One pinned-seed run supplies the representative rounds figure (the
      // round count is seed-invariant for the fixed-schedule detectors and
      // within one round of it for the rest).
      core::DetectorOptions probe_opt = base;
      probe_opt.seed = 1;
      const core::Verdict probe = det->run_fresh(far_inst.graph, far_ids, probe_opt);

      const bool claim_detection = name != "edge_checker" && name != "color_coding";
      const bool ok = free_ok && (!claim_detection || far_rate.rate() >= 2.0 / 3.0);
      claims.check(std::string(name) + " at k=" + std::to_string(k), ok);
      table.row()
          .cell(static_cast<std::uint64_t>(k))
          .cell(std::string(name) + (claim_detection ? "" : " (no detection claim)"))
          .cell(far_rate.rate(), 3)
          .cell(free_ok ? "yes" : "NO")
          .cell(probe.stats.rounds_executed)
          .cell_ok(ok);
    }
    if (k == 5) {
      table.row()
          .cell(5u)
          .cell("[7]/[20] techniques")
          .cell("n/a — provably fail for k>=5")
          .cell("n/a")
          .cell(0u)
          .cell_ok(true);
    }
  }

  table.print(std::cout, "B1: this paper vs specialized distributed testers and centralized "
                         "color coding (same certified instances, one registry)");
  return claims.summarize();
}
