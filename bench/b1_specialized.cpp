/// \file b1_specialized.cpp
/// \brief Comparison B1 — the paper's algorithm vs the specialized testers
/// it generalizes ([7] for triangles, [20] for C4) and the centralized
/// color-coding reference.
///
/// The paper's point is qualitative: [7]/[20]-style sampling works for
/// k <= 4 and provably cannot extend to k >= 5, while Algorithm 1 covers
/// every k at O(1/ε) rounds. The table puts the testers side by side on the
/// same certified instances: detection rate at their prescribed budgets,
/// rounds used, and soundness on free instances. For k = 5 only the paper's
/// algorithm competes (the specialized ones have no k=5 analogue — that is
/// the paper's contribution).
#include <atomic>
#include <iostream>

#include "baselines/c4_tester.hpp"
#include "baselines/color_coding.hpp"
#include "baselines/triangle_chs.hpp"
#include "core/tester.hpp"
#include "graph/far_generators.hpp"
#include "harness/claims.hpp"
#include "harness/estimator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  const std::size_t trials = args.get_u64("trials", 40);
  args.reject_unknown();

  harness::ClaimSet claims("B1 specialized-tester comparison");
  util::Table table({"k", "algorithm", "far-instance detect", "free-instance accept", "rounds",
                     "claim"});
  util::ThreadPool& pool = util::global_pool();

  for (const unsigned k : {3u, 4u, 5u}) {
    util::Rng rng(41 * k);
    graph::PlantedOptions popt;
    popt.k = k;
    popt.num_cycles = 6;
    popt.padding_leaves = 30;
    const auto far_inst = graph::planted_cycles_instance(popt, rng);
    const graph::Graph free_inst =
        graph::ck_free_instance(k % 2 == 1 ? graph::CkFreeFamily::kBipartite
                                           : graph::CkFreeFamily::kHighGirth,
                                k, 60, rng);
    const double eps = far_inst.certified_epsilon();
    const graph::IdAssignment far_ids =
        graph::IdAssignment::identity(far_inst.graph.num_vertices());
    const graph::IdAssignment free_ids = graph::IdAssignment::identity(free_inst.num_vertices());

    // --- The paper's tester, at its prescribed budget. ---
    std::atomic<std::uint64_t> rounds{0};
    const auto ours_far = harness::estimate_rate(
        [&](std::size_t, std::uint64_t seed) {
          core::TesterOptions topt;
          topt.k = k;
          topt.epsilon = eps;
          topt.seed = seed;
          const auto verdict = core::test_ck_freeness(far_inst.graph, far_ids, topt);
          rounds.store(verdict.stats.rounds_executed, std::memory_order_relaxed);
          return !verdict.accepted;
        },
        trials, 6000 + k, &pool);
    core::TesterOptions free_opt;
    free_opt.k = k;
    free_opt.epsilon = eps;
    free_opt.seed = 5;
    const bool ours_free = core::test_ck_freeness(free_inst, free_ids, free_opt).accepted;
    const bool ours_ok = ours_far.rate() >= 2.0 / 3.0 && ours_free;
    claims.check("Algorithm 1 at k=" + std::to_string(k), ours_ok);
    table.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell("Algorithm 1 (this paper)")
        .cell(ours_far.rate(), 3)
        .cell(ours_free ? "yes" : "NO")
        .cell(rounds.load())
        .cell_ok(ours_ok);

    // --- Specialized testers where they exist. ---
    if (k == 3) {
      std::atomic<std::uint64_t> chs_rounds{0};
      const auto chs = harness::estimate_rate(
          [&](std::size_t, std::uint64_t seed) {
            baselines::TriangleTesterOptions topt;
            topt.iterations = 256;  // O(1/eps^2)-style budget
            topt.seed = seed;
            const auto verdict =
                baselines::test_triangle_freeness_chs(far_inst.graph, far_ids, topt);
            chs_rounds.store(verdict.stats.rounds_executed, std::memory_order_relaxed);
            return !verdict.accepted;
          },
          trials, 6100, &pool);
      baselines::TriangleTesterOptions fopt;
      fopt.iterations = 256;
      const bool chs_free =
          baselines::test_triangle_freeness_chs(free_inst, free_ids, fopt).accepted;
      const bool ok = chs.rate() >= 2.0 / 3.0 && chs_free;
      claims.check("CHS triangle tester at k=3", ok);
      table.row()
          .cell(3u)
          .cell("CHS-style [7]")
          .cell(chs.rate(), 3)
          .cell(chs_free ? "yes" : "NO")
          .cell(chs_rounds.load())
          .cell_ok(ok);
    }
    if (k == 4) {
      std::atomic<std::uint64_t> frst_rounds{0};
      const auto frst = harness::estimate_rate(
          [&](std::size_t, std::uint64_t seed) {
            baselines::C4TesterOptions topt;
            topt.iterations = 256;
            topt.seed = seed;
            const auto verdict = baselines::test_c4_freeness_frst(far_inst.graph, far_ids, topt);
            frst_rounds.store(verdict.stats.rounds_executed, std::memory_order_relaxed);
            return !verdict.accepted;
          },
          trials, 6200, &pool);
      baselines::C4TesterOptions fopt;
      fopt.iterations = 256;
      const bool frst_free = baselines::test_c4_freeness_frst(free_inst, free_ids, fopt).accepted;
      const bool ok = frst.rate() >= 2.0 / 3.0 && frst_free;
      claims.check("FRST C4 tester at k=4", ok);
      table.row()
          .cell(4u)
          .cell("FRST-style [20]")
          .cell(frst.rate(), 3)
          .cell(frst_free ? "yes" : "NO")
          .cell(frst_rounds.load())
          .cell_ok(ok);
    }
    if (k == 5) {
      table.row()
          .cell(5u)
          .cell("[7]/[20] techniques")
          .cell("n/a — provably fail for k>=5")
          .cell("n/a")
          .cell(0u)
          .cell_ok(true);
    }

    // --- Centralized color coding as the sequential reference. ---
    baselines::ColorCodingOptions copt;
    copt.seed = 9 + k;
    copt.iterations = baselines::color_coding_iterations(k, 1.0 / 3.0);
    const auto cc = baselines::find_cycle_color_coding(far_inst.graph, k, copt);
    const auto cc_free = baselines::find_cycle_color_coding(free_inst, k, copt);
    const bool cc_ok = !cc_free.found;  // one-sided: never invents a cycle
    claims.check("color coding sound at k=" + std::to_string(k), cc_ok);
    table.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell("color coding (centralized)")
        .cell(cc.found ? "found" : "missed")
        .cell(cc_free.found ? "NO" : "yes")
        .cell(static_cast<std::uint64_t>(cc.iterations_used))
        .cell_ok(cc_ok);
  }

  table.print(std::cout, "B1: this paper vs specialized distributed testers and centralized "
                         "color coding (same certified instances)");
  return claims.summarize();
}
