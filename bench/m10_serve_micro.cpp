/// \file m10_serve_micro.cpp
/// \brief Micro-benchmark M10 — serving-layer latency SLOs and throughput.
///
/// Gates the PR 10 serving daemon (serve::Server) end to end — parse,
/// admission, worker batching, verdict cache, reply formatting — at
/// n ∈ {10k, 100k} on the cycle family with edge_checker k=5 queries:
///
///   * miss path ("cold"): every query unique, so each one is a verdict-
///     cache miss that runs the detector on a cached engine session — the
///     per-query cost a fresh question actually pays;
///   * hit path ("cached"): closed-loop clients replay a small distinct
///     query set after a warmup pass, so the verdict cache answers from
///     memoized reply bodies — the cost of asking an answered question.
///     Swept over server worker counts {1, 4, 8}; every sweep's reply
///     multiset (commutative FNV fold) must agree with workers=1, and the
///     server's own ServeStats supplies p50/p95/p99.
///
/// Full-mode acceptance (skipped under --smoke): the hit path at n=10k,
/// 8 workers must sustain >= 50k queries/sec with p99 < 5 ms.
///
/// Writes BENCH_serve.json (override with --out=PATH); --smoke shrinks to
/// n=10k and small query counts for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "serve/server.hpp"
#include "serve/stats.hpp"

namespace {

using namespace decycle;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string query_payload(std::uint64_t seed) {
  return "query tenant=bench algo=edge_checker k=5 eps=0.25 seed=" + std::to_string(seed) +
         " reps=1";
}

serve::ServerOptions server_options(std::size_t workers) {
  serve::ServerOptions options;
  options.workers = workers;
  options.queue_capacity = 4096;
  options.tenant_inflight_cap = 4096;  // the bench is one hot tenant by design
  return options;
}

void create_bench_tenant(serve::Server& server, graph::Vertex n, bool& ok) {
  const std::string reply =
      server.call("create tenant=bench n=" + std::to_string(n) + " family=cycle k=5 seed=7");
  if (!serve::is_ok(reply)) {
    std::fprintf(stderr, "FAILED: create: %s\n", reply.c_str());
    ok = false;
  }
}

struct HitRow {
  std::size_t workers = 0;
  double seconds = 0;
  double qps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  std::uint64_t multiset = 0;  ///< commutative reply fold (cross-check)
};

struct SizeRow {
  graph::Vertex n = 0;
  std::size_t miss_queries = 0;
  double miss_ms_per_query = 0;
  std::size_t hit_queries = 0;
  std::size_t distinct = 0;
  std::vector<HitRow> hits;
};

bool check(bool okay, const char* what) {
  if (!okay) std::fprintf(stderr, "FAILED: %s\n", what);
  return okay;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  bool ok = true;

  const std::vector<graph::Vertex> sizes = smoke ? std::vector<graph::Vertex>{10'000}
                                                 : std::vector<graph::Vertex>{10'000, 100'000};
  const std::vector<std::size_t> worker_counts = {1, 4, 8};
  const std::size_t client_threads = 8;
  const std::size_t distinct = 64;  ///< hit-phase distinct query set

  std::vector<SizeRow> rows;
  for (const graph::Vertex n : sizes) {
    SizeRow row;
    row.n = n;
    row.distinct = distinct;
    row.miss_queries = smoke ? 8 : (n >= 100'000 ? 16 : 64);
    // Total hit-path queries across clients: large enough that queueing and
    // cache-probe costs dominate warmup noise.
    row.hit_queries = smoke ? 2'000 : 20'000;

    // --- Miss path: unique queries, verdict cache can never hit. ---
    {
      serve::Server server(server_options(8));
      server.start();
      create_bench_tenant(server, n, ok);
      (void)server.call(query_payload(999'999));  // warm the engine session
      const auto t0 = std::chrono::steady_clock::now();
      for (std::size_t q = 0; q < row.miss_queries; ++q) {
        const std::string reply = server.call(query_payload(1'000 + q));
        if (!serve::is_ok(reply)) {
          std::fprintf(stderr, "FAILED: miss query: %s\n", reply.c_str());
          ok = false;
        }
      }
      row.miss_ms_per_query =
          seconds_since(t0) * 1e3 / static_cast<double>(row.miss_queries);
      const serve::Server::CacheStats cache = server.verdict_cache_stats();
      ok &= check(cache.hits == 0, "miss phase saw a verdict-cache hit");
      server.stop();
    }

    // --- Hit path: warm the distinct set, then hammer it closed-loop. ---
    for (const std::size_t workers : worker_counts) {
      serve::Server server(server_options(workers));
      server.start();
      create_bench_tenant(server, n, ok);
      for (std::size_t q = 0; q < distinct; ++q) (void)server.call(query_payload(q));

      const std::size_t per_thread = row.hit_queries / client_threads;
      std::vector<std::uint64_t> folds(client_threads, 0);
      const auto t0 = std::chrono::steady_clock::now();
      {
        std::vector<std::thread> clients;
        clients.reserve(client_threads);
        for (std::size_t c = 0; c < client_threads; ++c) {
          clients.emplace_back([&server, &folds, c, per_thread, distinct] {
            std::uint64_t fold = 0;
            for (std::size_t q = 0; q < per_thread; ++q) {
              const std::string reply =
                  server.call(query_payload((c * per_thread + q) % distinct));
              fold += fnv1a(reply);  // wrapping sum: order-independent
            }
            folds[c] = fold;
          });
        }
        for (std::thread& t : clients) t.join();
      }
      HitRow hit;
      hit.workers = workers;
      hit.seconds = seconds_since(t0);
      hit.qps = hit.seconds > 0
                    ? static_cast<double>(per_thread * client_threads) / hit.seconds
                    : 0;
      for (const std::uint64_t f : folds) hit.multiset += f;
      const serve::LatencySnapshot snap = server.stats().global();
      hit.p50_ms = snap.p50_ms;
      hit.p95_ms = snap.p95_ms;
      hit.p99_ms = snap.p99_ms;
      ok &= check(server.stats().queue().shed_total == 0, "hit phase shed requests");
      server.stop();
      row.hits.push_back(hit);
    }
    for (const HitRow& hit : row.hits) {
      ok &= check(hit.multiset == row.hits.front().multiset,
                  "reply multiset differs across worker counts");
    }

    rows.push_back(row);
    std::printf("n=%-8u miss %8.3f ms/q\n", row.n, row.miss_ms_per_query);
    for (const HitRow& hit : row.hits) {
      std::printf("  cached workers=%zu  %9.1f q/s  p50 %6.3f ms  p95 %6.3f ms  p99 %6.3f ms\n",
                  hit.workers, hit.qps, hit.p50_ms, hit.p95_ms, hit.p99_ms);
    }
  }

  // Headline acceptance: cached 10k-node serving at 8 workers sustains
  // >= 50k q/s with p99 < 5 ms (full mode only — smoke counts are tiny).
  if (!smoke) {
    for (const SizeRow& row : rows) {
      if (row.n != 10'000) continue;
      for (const HitRow& hit : row.hits) {
        if (hit.workers != 8) continue;
        ok &= check(hit.qps >= 50'000.0, "cached 10k serving under 50k queries/sec");
        ok &= check(hit.p99_ms < 5.0, "cached 10k serving p99 >= 5 ms");
      }
    }
  }

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"m10_serve_micro\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"hardware_threads\": %u,\n", std::thread::hardware_concurrency());
    std::fprintf(f, "  \"workload\": \"edge_checker k=5 on family=cycle, %zu client threads\",\n",
                 client_threads);
    std::fprintf(f, "  \"sizes\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SizeRow& r = rows[i];
      std::fprintf(f,
                   "    {\"n\": %u, \"miss_queries\": %zu, \"miss_ms_per_query\": %.4f,\n"
                   "     \"hit_queries\": %zu, \"distinct\": %zu,\n     \"cached\": [",
                   r.n, r.miss_queries, r.miss_ms_per_query, r.hit_queries, r.distinct);
      for (std::size_t j = 0; j < r.hits.size(); ++j) {
        const HitRow& h = r.hits[j];
        std::fprintf(f,
                     "%s\n       {\"workers\": %zu, \"seconds\": %.6f, "
                     "\"queries_per_sec\": %.1f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, "
                     "\"p99_ms\": %.4f}",
                     j == 0 ? "" : ",", h.workers, h.seconds, h.qps, h.p50_ms, h.p95_ms,
                     h.p99_ms);
      }
      std::fprintf(f, "\n     ]}%s\n", i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "FAILED: cannot open %s for writing\n", out_path.c_str());
    ok = false;
  }

  return ok ? 0 : 1;
}
