/// \file e2_detection.cpp
/// \brief Experiment T2 — Theorem 1, completeness on ε-far instances.
///
/// Paper claim: with ⌈e²·ln3/ε⌉ repetitions, an instance that is ε-far from
/// Ck-free is rejected with probability >= 2/3. Instances carry an explicit
/// farness certificate (planted edge-disjoint cycle packings); detection
/// rates are estimated over independent trials with 95% Wilson intervals.
/// The theoretical per-repetition bound (ε/e² for a unique minimum landing
/// on a cycle edge) is extremely loose — the measured rates illustrate by
/// how much.
#include <iostream>
#include <memory>

#include "core/detector.hpp"
#include "core/phase1.hpp"
#include "engine/engine.hpp"
#include "graph/far_generators.hpp"
#include "harness/claims.hpp"
#include "harness/estimator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  const std::size_t trials = args.get_u64("trials", 48);
  const std::size_t cycles = args.get_u64("cycles", 5);
  args.reject_unknown();

  harness::ClaimSet claims("E2 detection (Theorem 1, completeness)");
  util::Table table(
      {"k", "instance", "m", "cert. eps", "reps", "trials", "detect rate", "95% CI low", "claim"});
  util::ThreadPool& pool = util::global_pool();

  const core::Detector& tester = core::DetectorRegistry::builtin().require("tester");
  // One engine for the whole bench: trials run as one query batch per
  // instance (run_batch), lanes leasing cached Simulator sessions that the
  // tester resets between trials — the CSR table and arenas are built once
  // per lane, not once per trial. Seeds are the estimate_rate scheme, so
  // rates match any thread count.
  const engine::DetectionEngine eng{engine::EngineOptions{.pool = &pool}};
  const auto measure = [&](const graph::FarInstance& inst, unsigned k) {
    const double eps = inst.certified_epsilon();
    const std::size_t reps = core::recommended_repetitions(eps);
    graph::IdAssignment ids = graph::IdAssignment::identity(inst.graph.num_vertices());
    const engine::PinnedGraphPtr pinned = engine::pin(inst.graph, std::move(ids));
    core::DetectorOptions base;
    base.k = k;
    base.epsilon = eps;
    const auto estimate =
        harness::estimate_detector_rate(eng, pinned, tester, base, trials, 4242 + k);

    const bool holds = estimate.rate() >= 2.0 / 3.0;
    claims.check("detection >= 2/3 on " + inst.description, holds);
    table.row()
        .cell(static_cast<std::uint64_t>(k))
        .cell(inst.description)
        .cell(static_cast<std::uint64_t>(inst.graph.num_edges()))
        .cell(eps, 4)
        .cell(static_cast<std::uint64_t>(reps))
        .cell(static_cast<std::uint64_t>(trials))
        .cell(estimate.rate(), 3)
        .cell(estimate.interval.low, 3)
        .cell_ok(holds);
  };

  struct Config {
    unsigned k;
    std::size_t padding;  // dilutes epsilon
  };
  const Config configs[] = {{3, 0}, {3, 60}, {4, 0},  {4, 60}, {5, 0},
                            {5, 60}, {6, 0},  {6, 90}, {7, 0},  {7, 90}};
  for (const auto& config : configs) {
    util::Rng rng(17 * config.k + config.padding);
    graph::PlantedOptions popt;
    popt.k = config.k;
    popt.num_cycles = cycles;
    popt.padding_leaves = config.padding;
    measure(graph::planted_cycles_instance(popt, rng), config.k);
  }

  // Noisy instances: the planted cycles sit inside a girth-(>k) background,
  // so Phase 2 must cope with irrelevant traffic and decoy paths.
  for (const unsigned k : {4u, 5u, 6u}) {
    util::Rng rng(900 + k);
    graph::NoisyFarOptions nopt;
    nopt.k = k;
    nopt.num_cycles = cycles;
    nopt.background_n = 90;
    nopt.background_m = 140;
    measure(graph::noisy_far_instance(nopt, rng), k);
  }

  table.print(std::cout, "T2: rejection rate on certified eps-far instances (bound: 2/3)");
  return claims.summarize();
}
