/// \file m4_lab_micro.cpp
/// \brief Micro-benchmark M4 — Simulator reuse in lab trial loops.
///
/// Measures the before/after of Simulator::reset on estimator-heavy lab
/// workloads: the same scenario cell is executed with per-trial fresh
/// Simulator construction (before) and with one reused, reset() simulator
/// per lane (after — the LabRunner default). Three workload shapes:
///
///   * tester_per_rep   — per-repetition detection-rate estimation (reps=1,
///     many trials) on a planted instance: construction is a large fraction
///     of each trial, the shape where reuse pays most;
///   * tester_full      — a full Theorem-1 T2-style completeness cell
///     (recommended repetitions): run-dominated, honest lower bound;
///   * edge_checker_sparse — the deterministic checker on a 20k-node sparse
///     G(n,2n): k/2+1 rounds of work against an O(m) per-trial table build.
///
/// Both modes must produce identical cell aggregates (the reuse contract);
/// the bench aborts with exit code 1 otherwise. Heap allocations per mode
/// are counted with the test alloc probe. Writes BENCH_lab.json (override
/// with --out=PATH); --smoke shrinks trial counts for CI.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "lab/runner.hpp"
#include "lab/scenario.hpp"
#include "support/alloc_probe.hpp"
#include "util/cli.hpp"

namespace {

using namespace decycle;

struct ModeResult {
  double seconds = 0.0;
  std::uint64_t allocations = 0;
  lab::CellResult cell;
  engine::SessionStats sessions;  ///< the runner's engine cache counters
};

ModeResult run_mode(const lab::ScenarioCell& cell, bool reuse) {
  lab::LabOptions opts;
  opts.reuse_simulators = reuse;
  const lab::LabRunner runner(opts);
  ModeResult out;
  const std::uint64_t allocs_before = testsupport::allocation_count();
  const auto start = std::chrono::steady_clock::now();
  out.cell = runner.run_cell(cell);
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  out.allocations = testsupport::allocation_count() - allocs_before;
  out.sessions = runner.session_stats();
  return out;
}

bool aggregates_match(const lab::CellResult& a, const lab::CellResult& b) {
  return a.rejections == b.rejections && a.rounds_total == b.rounds_total &&
         a.messages_total == b.messages_total && a.bits_total == b.bits_total &&
         a.max_link_bits == b.max_link_bits && a.max_bundle == b.max_bundle &&
         a.dropped_total == b.dropped_total;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const std::string out_path = args.get_string("out", "BENCH_lab.json");
  args.reject_unknown();

  struct Scenario {
    const char* name;
    std::vector<std::string> tokens;
  };
  const std::size_t t1 = smoke ? 32 : 512;
  const std::size_t t2 = smoke ? 8 : 64;
  const std::size_t t3 = smoke ? 8 : 128;
  const Scenario scenarios[] = {
      {"tester_per_rep",
       {"family=planted", "k=5", "n=200", "eps=0.1", "reps=1", "seed=404",
        "trials=" + std::to_string(t1)}},
      {"tester_full",
       {"family=planted", "k=5", "n=60", "eps=0.1", "seed=404",
        "trials=" + std::to_string(t2)}},
      {"edge_checker_sparse",
       {"family=gnm", "k=5", "n=20000", "algo=edge_checker", "seed=404",
        "trials=" + std::to_string(t3)}},
  };

  std::string doc = "{\n  \"bench\": \"m4_lab_micro\",\n  \"smoke\": ";
  doc += smoke ? "true" : "false";
  doc +=
      ",\n  \"baseline\": \"fresh Simulator per trial (pre-reset build)\",\n  \"scenarios\": [\n";

  bool ok = true;
  for (std::size_t i = 0; i < std::size(scenarios); ++i) {
    const Scenario& sc = scenarios[i];
    const lab::ScenarioSpec spec = lab::ScenarioSpec::parse_tokens(sc.tokens);
    const auto cells = spec.expand();
    const ModeResult fresh = run_mode(cells[0], /*reuse=*/false);
    const ModeResult reused = run_mode(cells[0], /*reuse=*/true);
    if (!aggregates_match(fresh.cell, reused.cell)) {
      std::fprintf(stderr, "FAIL: %s — reuse changed the cell aggregates\n", sc.name);
      ok = false;
    }
    const double speedup = reused.seconds > 0 ? fresh.seconds / reused.seconds : 0.0;
    const double alloc_cut =
        fresh.allocations > 0
            ? 1.0 - static_cast<double>(reused.allocations) / static_cast<double>(fresh.allocations)
            : 0.0;
    char line[640];
    std::snprintf(
        line, sizeof(line),
        "    {\"name\": \"%s\", \"trials\": %llu, \"vertices\": %llu, \"edges\": %llu,\n"
        "     \"before\": {\"mode\": \"fresh_build\", \"seconds\": %.6f, \"allocations\": %llu},\n"
        "     \"after\":  {\"mode\": \"reset_reuse\", \"seconds\": %.6f, \"allocations\": %llu},\n"
        "     \"speedup\": %.3f, \"alloc_reduction\": %.3f}%s\n",
        sc.name, static_cast<unsigned long long>(fresh.cell.trials),
        static_cast<unsigned long long>(fresh.cell.total_vertices / fresh.cell.trials),
        static_cast<unsigned long long>(fresh.cell.total_edges / fresh.cell.trials),
        fresh.seconds, static_cast<unsigned long long>(fresh.allocations), reused.seconds,
        static_cast<unsigned long long>(reused.allocations), speedup, alloc_cut,
        i + 1 < std::size(scenarios) ? "," : "");
    doc += line;
    std::printf("%-20s fresh %.3fs (%llu allocs)  reuse %.3fs (%llu allocs)  speedup %.2fx  "
                "sessions hit/miss %llu/%llu\n",
                sc.name, fresh.seconds, static_cast<unsigned long long>(fresh.allocations),
                reused.seconds, static_cast<unsigned long long>(reused.allocations), speedup,
                static_cast<unsigned long long>(reused.sessions.hits),
                static_cast<unsigned long long>(reused.sessions.misses));
  }
  doc += "  ]\n}\n";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fputs(doc.c_str(), f);
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return ok ? 0 : 1;
}
