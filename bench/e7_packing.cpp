/// \file e7_packing.cpp
/// \brief Experiment T7 — Lemma 4: ε-far graphs hold >= εm/k edge-disjoint
/// k-cycles.
///
/// On instances with a certified deletion distance (planted packings of
/// c cycles: ε-far for every ε < c/m), Lemma 4 predicts at least εm/k
/// edge-disjoint copies. The greedy packer must therefore recover at least
/// ⌈εm/k⌉ cycles — and on these constructions it recovers a maximal family,
/// which the table compares against the planted count.
#include <cmath>
#include <iostream>

#include "graph/far_generators.hpp"
#include "graph/packing.hpp"
#include "harness/claims.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  args.reject_unknown();

  harness::ClaimSet claims("E7 packing (Lemma 4)");
  util::Table table({"instance", "k", "m", "cert. eps", "eps*m/k", "greedy packing", "planted",
                     "claim"});

  util::Rng rng(12);
  struct Case {
    std::string name;
    graph::FarInstance inst;
    unsigned k;
  };
  std::vector<Case> cases;
  {
    graph::PlantedOptions p1;
    p1.k = 4;
    p1.num_cycles = 10;
    p1.padding_leaves = 30;
    cases.push_back({"planted C4", graph::planted_cycles_instance(p1, rng), 4});
    graph::PlantedOptions p2;
    p2.k = 7;
    p2.num_cycles = 8;
    p2.padding_leaves = 50;
    cases.push_back({"planted C7", graph::planted_cycles_instance(p2, rng), 7});
    graph::NoisyFarOptions n1;
    n1.k = 5;
    n1.num_cycles = 8;
    n1.background_n = 120;
    n1.background_m = 200;
    cases.push_back({"noisy C5", graph::noisy_far_instance(n1, rng), 5});
    cases.push_back({"layered C5", graph::layered_instance(5, 11, 4, rng), 5});
    cases.push_back({"layered C6", graph::layered_instance(6, 9, 3, rng), 6});
  }

  for (const auto& c : cases) {
    const double eps = c.inst.certified_epsilon();
    const double lemma_bound =
        eps * static_cast<double>(c.inst.graph.num_edges()) / static_cast<double>(c.k);
    const auto packing = graph::greedy_cycle_packing(c.inst.graph, c.k);
    const bool holds = static_cast<double>(packing.size()) >= std::floor(lemma_bound);
    claims.check("packing >= eps*m/k on " + c.name, holds);
    table.row()
        .cell(c.name)
        .cell(static_cast<std::uint64_t>(c.k))
        .cell(static_cast<std::uint64_t>(c.inst.graph.num_edges()))
        .cell(eps, 4)
        .cell(lemma_bound, 2)
        .cell(static_cast<std::uint64_t>(packing.size()))
        .cell(static_cast<std::uint64_t>(c.inst.planted.size()))
        .cell_ok(holds);
  }

  table.print(std::cout, "T7: greedy edge-disjoint Ck packing vs Lemma 4 bound eps*m/k");
  return claims.summarize();
}
