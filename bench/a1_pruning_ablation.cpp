/// \file a1_pruning_ablation.cpp
/// \brief Ablation A1 — what pruning buys: message volume vs instance size.
///
/// The paper motivates pruning with nodes "connected to u and/or v via many
/// vertex-disjoint paths of same length" (§3.2). Complete bipartite graphs
/// are exactly that worst case: the number of distinct u->...->x paths grows
/// polynomially with the side size, so naive append-and-forward bundles grow
/// with the graph while Algorithm 1's stay at the Lemma 3 constant. The
/// table sweeps the side size and compares max bundle, total traffic, and
/// detection outcome.
#include <iostream>

#include "core/cycle_detector.hpp"
#include "graph/generators.hpp"
#include "harness/claims.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  const auto k = static_cast<unsigned>(args.get_u64("k", 8));
  args.reject_unknown();

  harness::ClaimSet claims("A1 pruning ablation");
  util::Table table({"K(d,d) side", "mode", "max |S|", "total KiB", "detected", "overflow",
                     "claim"});

  std::uint64_t bound = 1;
  for (unsigned t = 2; t <= k / 2; ++t) bound = std::max(bound, core::lemma3_bound(k, t));

  std::size_t previous_naive_max = 0;
  for (const graph::Vertex d : {6u, 8u, 10u, 12u, 14u}) {
    const graph::Graph g = graph::complete_bipartite(d, d);
    const graph::IdAssignment ids = graph::IdAssignment::identity(g.num_vertices());

    core::EdgeDetectionOptions pruned_opt;
    pruned_opt.detect.k = k;
    const auto pruned = core::detect_cycle_through_edge(g, ids, g.edge(0), pruned_opt);

    core::EdgeDetectionOptions naive_opt;
    naive_opt.detect.k = k;
    naive_opt.detect.pruning = core::PruningMode::kNaive;
    naive_opt.detect.naive_cap = 1u << 20;
    const auto naive = core::detect_cycle_through_edge(g, ids, g.edge(0), naive_opt);

    const bool pruned_bounded = pruned.max_bundle_sequences <= bound;
    const bool naive_grows = naive.max_bundle_sequences >= previous_naive_max;
    previous_naive_max = naive.max_bundle_sequences;
    const bool both_detect = pruned.found && naive.found;
    claims.check("pruned bundle <= Lemma 3 bound at d=" + std::to_string(d), pruned_bounded);
    claims.check("both modes detect at d=" + std::to_string(d), both_detect);
    claims.check("naive bundle monotone in d at d=" + std::to_string(d), naive_grows);

    table.row()
        .cell(static_cast<std::uint64_t>(d))
        .cell("algorithm 1")
        .cell(static_cast<std::uint64_t>(pruned.max_bundle_sequences))
        .cell(static_cast<double>(pruned.stats.total_bits) / 8192.0, 1)
        .cell(pruned.found ? "yes" : "no")
        .cell(pruned.overflow ? "yes" : "no")
        .cell_ok(pruned_bounded);
    table.row()
        .cell(static_cast<std::uint64_t>(d))
        .cell("naive")
        .cell(static_cast<std::uint64_t>(naive.max_bundle_sequences))
        .cell(static_cast<double>(naive.stats.total_bits) / 8192.0, 1)
        .cell(naive.found ? "yes" : "no")
        .cell(naive.overflow ? "yes" : "no")
        .cell_ok(true);
  }

  table.print(std::cout, "A1: bundle growth, Algorithm 1 vs naive (k=" + std::to_string(k) +
                             ", Lemma 3 bound = " + std::to_string(bound) + ")");
  return claims.summarize();
}
