/// \file m6_scale_micro.cpp
/// \brief Micro-benchmark M6 — million-node scale: streaming graph builds
/// and work-stealing delivery throughput across thread counts.
///
/// Gates the PR 6 hot-path rebuild (work-stealing scheduler, pooled
/// allocation, bitset adjacency, streaming CSR builds) at production scale:
///
///   * build_* — constructing a circulant C_n(1..4) via the generic
///     sort-and-dedup path (Graph::from_edges) vs the streaming
///     lexicographic path (Graph::from_ordered_edges), plus the bitset
///     adjacency compression ratio at each size;
///   * delivery_* — dense broadcast rounds (every node sends on every port)
///     at n ∈ {10k, 100k, 1M, 4M}, swept over pool sizes {1, 2, 4, 8}
///     through the work-stealing delivery scheduler, totals cross-checked
///     against the single-threaded run (determinism contract).
///
/// Writes BENCH_scale.json (override with --out=PATH). The JSON records
/// hardware_threads so scaling numbers are read against the parallelism
/// the host actually offers — on a single-core container every extra
/// thread measures pure scheduler overhead, not speedup. --smoke shrinks
/// to {10k, 50k} for CI. Exits 1 on any cross-check failure.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "congest/simulator.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "graph/sparse_bitset.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace decycle;
using congest::Simulator;

/// Broadcast-k-rounds program: every node ships one small message per port
/// per round until the horizon. Mirrors m2's ChattyAllPorts minus the inbox
/// fold, keeping the hot path delivery-bound.
class Broadcast final : public congest::NodeProgram {
 public:
  explicit Broadcast(std::uint64_t horizon) : horizon_(horizon) {}

  void on_round(congest::Context& ctx, std::span<const congest::Envelope> inbox) override {
    std::uint64_t acc = 0;
    for (const auto& env : inbox) {
      congest::MessageReader r(env.payload);
      acc ^= r.get_u64();
    }
    if (ctx.round() >= horizon_) return;
    congest::MessageWriter w;
    w.put_u64(ctx.my_id() ^ (acc & 1));
    ctx.send_all(w.finish());
  }

 private:
  std::uint64_t horizon_;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

struct BuildRow {
  graph::Vertex n = 0;
  std::size_t edges = 0;
  double sorted_s = 0;     ///< Graph::from_edges (sort + dedup)
  double streaming_s = 0;  ///< Graph::from_ordered_edges
  std::size_t adjacency_entries = 0;
  std::size_t bitset_words = 0;
};

struct ThreadRow {
  unsigned threads = 0;
  double seconds = 0;
  double msgs_per_sec = 0;
};

struct DeliveryRow {
  std::string name;
  graph::Vertex n = 0;
  unsigned degree = 0;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::vector<ThreadRow> threads;
};

bool check(bool okay, const char* what) {
  if (!okay) std::fprintf(stderr, "FAILED: %s\n", what);
  return okay;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  bool ok = true;
  constexpr std::uint32_t kHalfDegree = 4;  // C_n(1..4): 8-regular

  const std::vector<graph::Vertex> sizes =
      smoke ? std::vector<graph::Vertex>{10'000, 50'000}
            : std::vector<graph::Vertex>{10'000, 100'000, 1'000'000, 4'000'000};
  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};

  // --- Build comparison: sorted generic path vs streaming path. ---
  std::vector<BuildRow> builds;
  for (const graph::Vertex n : sizes) {
    BuildRow row;
    row.n = n;
    {
      // The generic path receives the same edge stream but may not assume
      // its order — it pays the sort + dedup the streaming build skips.
      const graph::Graph ordered = graph::circulant(n, kHalfDegree);
      const std::vector<graph::Edge> edge_copy(ordered.edges().begin(), ordered.edges().end());
      const auto t0 = std::chrono::steady_clock::now();
      const graph::Graph sorted_build = graph::Graph::from_edges(n, edge_copy);
      row.sorted_s = seconds_since(t0);
      row.edges = sorted_build.num_edges();
    }
    {
      const auto t0 = std::chrono::steady_clock::now();
      const graph::Graph g = graph::circulant(n, kHalfDegree, graph::AdjacencyMode::kBitset);
      row.streaming_s = seconds_since(t0);
      row.adjacency_entries = 2 * g.num_edges();
      row.bitset_words = g.bitset() != nullptr ? g.bitset()->total_words() : 0;
      ok &= check(g.num_edges() == std::size_t{n} * kHalfDegree, "circulant edge count");
      ok &= check(g.has_edge(0, 1) && g.has_edge(0, n - 1) && !g.has_edge(0, n / 2),
                  "bitset membership spot checks");
    }
    builds.push_back(row);
    std::printf("build n=%-9u edges=%-9zu sorted=%7.3fs streaming=%7.3fs (%.2fx)  "
                "bitset %zu words / %zu entries\n",
                row.n, row.edges, row.sorted_s, row.streaming_s,
                row.streaming_s > 0 ? row.sorted_s / row.streaming_s : 0.0,
                row.bitset_words, row.adjacency_entries);
  }

  // --- Delivery throughput sweep. ---
  std::vector<DeliveryRow> deliveries;
  for (const graph::Vertex n : sizes) {
    // Constant per-size message budget: bigger graphs run fewer rounds.
    const std::uint64_t horizon = n >= 1'000'000 ? 2 : (n >= 100'000 ? 4 : 8);
    const int reps = smoke ? 1 : (n >= 1'000'000 ? 1 : 2);
    const graph::Graph g = graph::circulant(n, kHalfDegree);
    const graph::IdAssignment ids = graph::IdAssignment::identity(n);
    const auto factory = [horizon](graph::Vertex) { return std::make_unique<Broadcast>(horizon); };

    DeliveryRow row;
    row.name = "delivery_bcast_n" + std::to_string(n);
    row.n = n;
    row.degree = 2 * kHalfDegree;

    Simulator sim(g, ids, factory);
    std::uint64_t base_messages = 0;
    std::uint64_t base_rounds = 0;
    for (const unsigned t : thread_counts) {
      std::unique_ptr<util::ThreadPool> pool;
      Simulator::Options opt;
      if (t > 1) {
        pool = std::make_unique<util::ThreadPool>(t);
        opt.pool = pool.get();
      }
      sim.reset(factory);
      (void)sim.run(opt);  // warm arenas / pools, untimed
      ThreadRow tr;
      tr.threads = t;
      for (int rep = 0; rep < reps; ++rep) {
        sim.reset(factory);
        const auto t0 = std::chrono::steady_clock::now();
        const congest::RunStats stats = sim.run(opt);
        const double dt = seconds_since(t0);
        if (rep == 0 || dt < tr.seconds) tr.seconds = dt;
        if (t == 1 && rep == 0) {
          base_messages = stats.total_messages;
          base_rounds = stats.rounds_executed;
        }
        ok &= check(stats.total_messages == base_messages && stats.rounds_executed == base_rounds,
                    "threaded run disagrees with single-threaded totals");
      }
      tr.msgs_per_sec = tr.seconds > 0 ? static_cast<double>(base_messages) / tr.seconds : 0;
      row.threads.push_back(tr);
      std::printf("%-24s threads=%u  %8.4fs  %12.3e msg/s\n", row.name.c_str(), t, tr.seconds,
                  tr.msgs_per_sec);
    }
    row.messages = base_messages;
    row.rounds = base_rounds;
    deliveries.push_back(row);
  }

  // --- JSON. ---
  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"m6_scale_micro\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"hardware_threads\": %u,\n", std::thread::hardware_concurrency());
    std::fprintf(f, "  \"build\": [\n");
    for (std::size_t i = 0; i < builds.size(); ++i) {
      const BuildRow& b = builds[i];
      std::fprintf(f,
                   "    {\"n\": %u, \"edges\": %zu, \"sorted_build_s\": %.6f, "
                   "\"streaming_build_s\": %.6f, \"build_speedup\": %.3f, "
                   "\"adjacency_entries\": %zu, \"bitset_words\": %zu}%s\n",
                   b.n, b.edges, b.sorted_s, b.streaming_s,
                   b.streaming_s > 0 ? b.sorted_s / b.streaming_s : 0.0, b.adjacency_entries,
                   b.bitset_words, i + 1 == builds.size() ? "" : ",");
    }
    std::fprintf(f, "  ],\n  \"delivery\": [\n");
    for (std::size_t i = 0; i < deliveries.size(); ++i) {
      const DeliveryRow& d = deliveries[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"n\": %u, \"degree\": %u, \"rounds\": %llu, "
                   "\"messages\": %llu,\n     \"threads\": [",
                   d.name.c_str(), d.n, d.degree, static_cast<unsigned long long>(d.rounds),
                   static_cast<unsigned long long>(d.messages));
      const double base = d.threads.empty() ? 0 : d.threads.front().msgs_per_sec;
      for (std::size_t j = 0; j < d.threads.size(); ++j) {
        const ThreadRow& t = d.threads[j];
        std::fprintf(f,
                     "%s\n       {\"threads\": %u, \"seconds\": %.6f, \"msgs_per_sec\": %.1f, "
                     "\"speedup_vs_1t\": %.3f}",
                     j == 0 ? "" : ",", t.threads, t.seconds, t.msgs_per_sec,
                     base > 0 ? t.msgs_per_sec / base : 0.0);
      }
      std::fprintf(f, "\n     ]}%s\n", i + 1 == deliveries.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "FAILED: cannot open %s for writing\n", out_path.c_str());
    ok = false;
  }

  return ok ? 0 : 1;
}
