/// \file e3_rounds.cpp
/// \brief Experiment T3 — Theorem 1's O(1/ε) round complexity.
///
/// The tester runs ⌈e²·ln3/ε⌉ repetitions of (⌊k/2⌋ + 2) rounds each, so
/// total rounds must scale linearly in 1/ε with slope e²·ln3·(⌊k/2⌋+2).
/// The table reports measured simulator rounds against the model, plus the
/// bandwidth-normalized round count at a strict B = 2⌈log₂ n⌉-bit link
/// (DESIGN.md §3.4) — the constant-factor price of bundling.
#include <cmath>
#include <iostream>

#include "core/tester.hpp"
#include "graph/far_generators.hpp"
#include "harness/claims.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  const auto k = static_cast<unsigned>(args.get_u64("k", 5));
  args.reject_unknown();

  harness::ClaimSet claims("E3 rounds (Theorem 1, O(1/eps))");

  util::Rng rng(5);
  graph::PlantedOptions popt;
  popt.k = k;
  popt.num_cycles = 4;
  popt.padding_leaves = 40;
  const auto inst = graph::planted_cycles_instance(popt, rng);
  const graph::IdAssignment ids = graph::IdAssignment::identity(inst.graph.num_vertices());
  const std::uint64_t bandwidth =
      2 * static_cast<std::uint64_t>(std::ceil(std::log2(inst.graph.num_vertices())));

  util::Table table({"eps", "1/eps", "reps", "rounds", "rounds*eps", "normalized rounds (B)",
                     "model reps", "claim"});

  const double eps_values[] = {0.5, 0.3, 0.2, 0.1, 0.05, 0.02};
  double first_scaled = 0.0;
  for (const double eps : eps_values) {
    core::TesterOptions topt;
    topt.k = k;
    topt.epsilon = eps;
    topt.seed = 11;
    topt.record_rounds = true;
    const auto verdict = core::test_ck_freeness(inst.graph, ids, topt);

    const auto model_reps = core::recommended_repetitions(eps);
    const auto model_rounds = model_reps * (k / 2 + 2);
    // The simulator may save a round at the very end (no traffic after the
    // final check); allow that single round of slack.
    const bool matches_model = verdict.stats.rounds_executed <= model_rounds &&
                               verdict.stats.rounds_executed + 1 >= model_rounds;
    const double scaled = static_cast<double>(verdict.stats.rounds_executed) * eps;
    if (first_scaled == 0.0) first_scaled = scaled;
    // Linearity: rounds*eps stays within 20% of its value at the first eps
    // (the ceiling in the repetition count causes small wobble).
    const bool linear = scaled > 0.6 * first_scaled && scaled < 1.4 * first_scaled;

    claims.check("rounds follow reps*(k/2+2) at eps=" + util::format_double(eps, 2),
                 matches_model);
    claims.check("rounds scale linearly in 1/eps at eps=" + util::format_double(eps, 2), linear);
    table.row()
        .cell(eps, 2)
        .cell(1.0 / eps, 1)
        .cell(static_cast<std::uint64_t>(verdict.repetitions))
        .cell(verdict.stats.rounds_executed)
        .cell(scaled, 1)
        .cell(verdict.stats.normalized_rounds(bandwidth))
        .cell(static_cast<std::uint64_t>(model_reps))
        .cell_ok(matches_model && linear);
  }

  table.print(std::cout,
              "T3: round complexity vs 1/eps (k=" + std::to_string(k) +
                  ", slope = e^2 ln3 (k/2+2), B=" + std::to_string(bandwidth) + " bits)");
  return claims.summarize();
}
