/// \file m8_engine_micro.cpp
/// \brief Micro-benchmark M8 — DetectionEngine session cache and batch
/// execution at scale.
///
/// Gates the PR 8 engine layer (GraphStore, SessionPool, run_batch) on two
/// axes, at n ∈ {10k, 100k, 1M} on circulant C_n(1..4):
///
///   * session_* — per-query latency with the session cache off (a fresh
///     Simulator build per query: the pre-engine cost model) vs on (one
///     leased, reset() session): the cache must buy >= 1.5x at 100k;
///   * batch_* — a mixed-seed query batch through run_batch swept over
///     thread counts {1, 4, 8} vs the same queries one-at-a-time through
///     run_one: lane fan-out throughput, with every threaded batch's verdict
///     aggregates cross-checked against the single-threaded batch (the
///     byte-identity contract) — any disagreement exits 1.
///
/// Writes BENCH_engine.json (override with --out=PATH); --smoke shrinks to
/// {10k, 50k} and small batches for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.hpp"
#include "engine/engine.hpp"
#include "engine/lanes.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace decycle;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Order-independent fold of everything a verdict says — equal folds across
/// thread counts is the cross-check (order-dependence would hide a slot
/// permutation, but the goldens gate ordering already; this gates content).
struct VerdictFold {
  std::uint64_t rejections = 0;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t bits = 0;
  std::uint64_t counters = 0;

  void add(const core::Verdict& v) {
    rejections += v.accepted ? 0 : 1;
    rounds += v.stats.rounds_executed;
    messages += v.stats.total_messages;
    bits += v.stats.total_bits;
    for (const std::uint64_t c : v.counters) counters += c;
  }
  bool operator==(const VerdictFold&) const = default;
};

VerdictFold fold_all(const std::vector<core::Verdict>& verdicts) {
  VerdictFold f;
  for (const core::Verdict& v : verdicts) f.add(v);
  return f;
}

/// Edge-checker queries: k/2+1 rounds of deterministic work against an
/// O(m) per-query Simulator build, so construction is a real fraction of
/// per-query cost — the workload session caching exists for (m4's biggest
/// reuse win is the same detector; the unbounded tester is run-dominated
/// at these sizes).
std::vector<engine::Query> make_batch(const core::Detector& detector, std::size_t count,
                                      std::uint64_t base_seed) {
  std::vector<engine::Query> queries(count);
  for (std::size_t i = 0; i < count; ++i) {
    queries[i].detector = &detector;
    queries[i].options.k = 5;
    queries[i].options.seed = engine::trial_seed(base_seed, i);
  }
  return queries;
}

struct ThreadRow {
  unsigned threads = 0;
  double seconds = 0;
  double queries_per_sec = 0;
};

struct SizeRow {
  graph::Vertex n = 0;
  std::size_t edges = 0;
  std::size_t queries = 0;
  double cold_ms_per_query = 0;    ///< cache off: fresh Simulator per query
  double cached_ms_per_query = 0;  ///< cache on: one leased, reset() session
  double session_speedup = 0;
  double sequential_s = 0;  ///< run_one loop, cached, no pool
  std::vector<ThreadRow> batch;
};

bool check(bool okay, const char* what) {
  if (!okay) std::fprintf(stderr, "FAILED: %s\n", what);
  return okay;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_engine.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strncmp(argv[i], "--out=", 6) == 0) out_path = argv[i] + 6;
  }
  bool ok = true;

  const core::Detector& detector = core::DetectorRegistry::builtin().require("edge_checker");
  const std::vector<graph::Vertex> sizes =
      smoke ? std::vector<graph::Vertex>{10'000, 50'000}
            : std::vector<graph::Vertex>{10'000, 100'000, 1'000'000};
  const std::vector<unsigned> thread_counts = {1, 4, 8};

  std::vector<SizeRow> rows;
  for (const graph::Vertex n : sizes) {
    // Query counts keep per-size wall clock flat-ish: fewer at 1M.
    const std::size_t latency_q = smoke ? 4 : (n >= 1'000'000 ? 3 : (n >= 100'000 ? 8 : 16));
    const std::size_t batch_q = smoke ? 8 : (n >= 1'000'000 ? 8 : (n >= 100'000 ? 24 : 48));

    const engine::PinnedGraphPtr g =
        engine::pin(graph::circulant(n, 4), graph::IdAssignment::identity(n));
    SizeRow row;
    row.n = n;
    row.edges = g->graph.num_edges();
    row.queries = batch_q;

    // --- Session latency: cold (cache off) vs cached (reset-reuse). ---
    const std::vector<engine::Query> latency_batch = make_batch(detector, latency_q, 808);
    VerdictFold cold_fold;
    {
      const engine::DetectionEngine cold{
          engine::EngineOptions{.pool = nullptr, .cache_sessions = false}};
      (void)cold.run_one(g, latency_batch[0]);  // warm allocator pools, untimed
      const auto t0 = std::chrono::steady_clock::now();
      cold_fold = fold_all(cold.run_batch(g, latency_batch));
      row.cold_ms_per_query = seconds_since(t0) * 1e3 / static_cast<double>(latency_q);
    }
    {
      const engine::DetectionEngine cached;
      (void)cached.run_one(g, latency_batch[0]);  // populate the session cache
      const auto t0 = std::chrono::steady_clock::now();
      const VerdictFold warm_fold = fold_all(cached.run_batch(g, latency_batch));
      row.cached_ms_per_query = seconds_since(t0) * 1e3 / static_cast<double>(latency_q);
      ok &= check(warm_fold == cold_fold, "cached session changed the verdicts");
      ok &= check(cached.session_stats().misses == 1, "warm batch rebuilt its session");
    }
    row.session_speedup =
        row.cached_ms_per_query > 0 ? row.cold_ms_per_query / row.cached_ms_per_query : 0.0;

    // --- Batch throughput across thread counts vs sequential run_one. ---
    const std::vector<engine::Query> batch = make_batch(detector, batch_q, 909);
    VerdictFold base_fold;
    {
      const engine::DetectionEngine eng;
      (void)eng.run_one(g, batch[0]);  // warm
      const auto t0 = std::chrono::steady_clock::now();
      std::vector<core::Verdict> verdicts;
      verdicts.reserve(batch_q);
      for (const engine::Query& q : batch) verdicts.push_back(eng.run_one(g, q));
      row.sequential_s = seconds_since(t0);
      base_fold = fold_all(verdicts);
    }
    for (const unsigned t : thread_counts) {
      std::unique_ptr<util::ThreadPool> pool;
      if (t > 1) pool = std::make_unique<util::ThreadPool>(t);
      const engine::DetectionEngine eng{engine::EngineOptions{.pool = pool.get()}};
      (void)eng.run_one(g, batch[0]);  // warm one session; lanes still miss once each
      const auto t0 = std::chrono::steady_clock::now();
      const VerdictFold fold = fold_all(eng.run_batch(g, batch));
      ThreadRow tr;
      tr.threads = t;
      tr.seconds = seconds_since(t0);
      tr.queries_per_sec = tr.seconds > 0 ? static_cast<double>(batch_q) / tr.seconds : 0;
      row.batch.push_back(tr);
      ok &= check(fold == base_fold, "threaded batch disagrees with single-threaded verdicts");
    }

    rows.push_back(row);
    std::printf("n=%-9u cold %8.3f ms/q  cached %8.3f ms/q  session_speedup %5.2fx\n", row.n,
                row.cold_ms_per_query, row.cached_ms_per_query, row.session_speedup);
    for (const ThreadRow& tr : row.batch) {
      std::printf("  batch %3zu queries  threads=%u  %8.4fs  %9.1f q/s  (sequential %8.4fs)\n",
                  row.queries, tr.threads, tr.seconds, tr.queries_per_sec, row.sequential_s);
    }
  }

  // The headline acceptance number: the session cache must be worth >= 1.5x
  // at the 100k working set (full mode only — smoke sizes differ).
  if (!smoke) {
    for (const SizeRow& row : rows) {
      if (row.n == 100'000) {
        ok &= check(row.session_speedup >= 1.5, "session cache under 1.5x at n=100k");
      }
    }
  }

  if (std::FILE* f = std::fopen(out_path.c_str(), "w")) {
    std::fprintf(f, "{\n  \"bench\": \"m8_engine_micro\",\n  \"smoke\": %s,\n",
                 smoke ? "true" : "false");
    std::fprintf(f, "  \"hardware_threads\": %u,\n", std::thread::hardware_concurrency());
    std::fprintf(f, "  \"workload\": \"edge_checker k=5 on circulant C_n(1..4)\",\n");
    std::fprintf(f, "  \"sizes\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SizeRow& r = rows[i];
      std::fprintf(f,
                   "    {\"n\": %u, \"edges\": %zu, \"queries\": %zu,\n"
                   "     \"session\": {\"cold_ms_per_query\": %.4f, \"cached_ms_per_query\": "
                   "%.4f, \"speedup\": %.3f},\n"
                   "     \"sequential_seconds\": %.6f,\n     \"batch\": [",
                   r.n, r.edges, r.queries, r.cold_ms_per_query, r.cached_ms_per_query,
                   r.session_speedup, r.sequential_s);
      for (std::size_t j = 0; j < r.batch.size(); ++j) {
        const ThreadRow& t = r.batch[j];
        std::fprintf(f,
                     "%s\n       {\"threads\": %u, \"seconds\": %.6f, \"queries_per_sec\": %.1f, "
                     "\"speedup_vs_sequential\": %.3f}",
                     j == 0 ? "" : ",", t.threads, t.seconds, t.queries_per_sec,
                     t.seconds > 0 ? r.sequential_s / t.seconds : 0.0);
      }
      std::fprintf(f, "\n     ]}%s\n", i + 1 == rows.size() ? "" : ",");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    std::fprintf(stderr, "FAILED: cannot open %s for writing\n", out_path.c_str());
    ok = false;
  }

  return ok ? 0 : 1;
}
