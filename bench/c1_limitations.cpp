/// \file c1_limitations.cpp
/// \brief C1 — the conclusion's negative results, made executable (paper §4).
///
/// The paper explains why its technique does not extend to (a) patterns H =
/// k-cycle + chord and (b) induced k-cycles: the pruning and the final
/// pairing are oblivious to chords, so the witness the algorithm settles on
/// may be a chordless cycle when a chorded one was wanted, or a chorded one
/// when an induced one was wanted. We build a gadget with two C5s through
/// the probed edge — one chorded, one induced — and show:
///
///   * plain Ck detection works on it (the paper's positive result);
///   * a hypothetical induced-C5 tester built by filtering Algorithm 1's
///     witness accepts/rejects the WRONG way around on suitable ID
///     assignments (the witness pairing picks the first disjoint pair, which
///     the IDs can steer to either cycle);
///   * the exact induced oracle (graph/subgraph.hpp) disagrees — proving the
///     filter-based approach is not a tester, exactly as §4 argues.
#include <iostream>

#include "core/cycle_detector.hpp"
#include "graph/subgraph.hpp"
#include "harness/claims.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace decycle;

/// Two C5s through e = {u, v}: the "x side" (u, x1, z, x2, v) and the
/// "y side" (u, y1, z, y2, v), sharing the apex z. \p chord_on_x adds the
/// chord {x1, v} to the x-side cycle.  Vertex numbering controls which
/// sequences sort first at the apex — the whole point of the experiment.
graph::Graph two_c5_gadget(bool chord_on_x, graph::Vertex u, graph::Vertex v, graph::Vertex x1,
                           graph::Vertex x2, graph::Vertex y1, graph::Vertex y2,
                           graph::Vertex z) {
  graph::GraphBuilder b;
  b.add_edge(u, v);
  b.add_edge(u, x1);
  b.add_edge(x1, z);
  b.add_edge(z, x2);
  b.add_edge(x2, v);
  b.add_edge(u, y1);
  b.add_edge(y1, z);
  b.add_edge(z, y2);
  b.add_edge(y2, v);
  if (chord_on_x) b.add_edge(x1, v);  // chord of the x-side C5
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  args.reject_unknown();

  harness::ClaimSet claims("C1 limitations (paper §4)");
  util::Table table({"scenario", "witness returned", "witness chorded", "induced C5 exists",
                     "filter-tester verdict", "claim"});

  // Scenario A: x side (small IDs, wins the pairing) carries the chord; the
  // induced C5 lives on the y side. The filter-based "induced tester"
  // inspects the returned witness, sees a chord, and wrongly accepts.
  {
    const graph::Graph g = two_c5_gadget(/*chord_on_x=*/true, 0, 1, 2, 3, 4, 5, 6);
    const graph::IdAssignment ids = graph::IdAssignment::identity(g.num_vertices());
    core::EdgeDetectionOptions opt;
    opt.detect.k = 5;
    const auto result = core::detect_cycle_through_edge(g, ids, {0, 1}, opt);
    const bool witness_chorded =
        result.found && !graph::validate_induced_cycle(g, result.witness);
    const bool induced_exists = graph::find_induced_cycle_through_edge(g, 5, 0, 1).has_value();
    const bool filter_rejects = result.found && !witness_chorded;
    // The failure the paper predicts: induced C5 exists but the filter
    // tester accepts because the witness it saw was chorded.
    const bool demonstrates = result.found && witness_chorded && induced_exists && !filter_rejects;
    claims.check("A: plain C5 detection works", result.found);
    claims.check("A: filter-tester misses the induced C5", demonstrates);
    table.row()
        .cell("A: chord on low-ID side")
        .cell(result.found ? "chorded cycle" : "-")
        .cell(witness_chorded ? "yes" : "no")
        .cell(induced_exists ? "yes" : "no")
        .cell(filter_rejects ? "reject" : "accept (WRONG)")
        .cell_ok(demonstrates);
  }

  // Scenario B: swap the ID roles — now the chordless side wins the pairing
  // and the SAME filter tester rejects; its verdict depends on IDs, not on
  // the graph property. (A correct tester's accept/reject may not flip under
  // relabeling.)
  {
    const graph::Graph g = two_c5_gadget(/*chord_on_x=*/true, 0, 1, 4, 5, 2, 3, 6);
    const graph::IdAssignment ids = graph::IdAssignment::identity(g.num_vertices());
    core::EdgeDetectionOptions opt;
    opt.detect.k = 5;
    const auto result = core::detect_cycle_through_edge(g, ids, {0, 1}, opt);
    const bool witness_chorded =
        result.found && !graph::validate_induced_cycle(g, result.witness);
    const bool induced_exists = graph::find_induced_cycle_through_edge(g, 5, 0, 1).has_value();
    const bool filter_rejects = result.found && !witness_chorded;
    const bool demonstrates = result.found && !witness_chorded && induced_exists && filter_rejects;
    claims.check("B: relabeled gadget flips the filter-tester verdict", demonstrates);
    table.row()
        .cell("B: chord on high-ID side")
        .cell(result.found ? "induced cycle" : "-")
        .cell(witness_chorded ? "yes" : "no")
        .cell(induced_exists ? "yes" : "no")
        .cell(filter_rejects ? "reject" : "accept")
        .cell_ok(demonstrates);
  }

  // Scenario C: H = C5-with-chord as the target pattern. Only the y side is
  // an H (chorded); the witness pairing returns the chordless x side, so a
  // "reject iff witness is chorded" H-detector misses H entirely.
  {
    const graph::Graph g = two_c5_gadget(/*chord_on_x=*/false, 0, 1, 2, 3, 4, 5, 6);
    // Add the chord on the y side manually.
    graph::GraphBuilder b;
    for (const auto& [a, c] : g.edges()) b.add_edge(a, c);
    b.add_edge(4, 1);  // chord {y1, v}
    const graph::Graph g2 = b.build();
    const graph::IdAssignment ids = graph::IdAssignment::identity(g2.num_vertices());
    core::EdgeDetectionOptions opt;
    opt.detect.k = 5;
    const auto result = core::detect_cycle_through_edge(g2, ids, {0, 1}, opt);
    const bool witness_chorded =
        result.found && !graph::validate_induced_cycle(g2, result.witness);
    // H exists: y-side C5 with its chord.
    const std::vector<graph::Vertex> y_cycle{0, 4, 6, 5, 1};
    const bool h_exists = graph::validate_cycle(g2, y_cycle) &&
                          !graph::validate_induced_cycle(g2, y_cycle);
    const bool demonstrates = result.found && !witness_chorded && h_exists;
    claims.check("C: witness filter misses the chorded pattern H", demonstrates);
    table.row()
        .cell("C: H = C5+chord target")
        .cell(result.found ? (witness_chorded ? "chorded" : "chordless") : "-")
        .cell(witness_chorded ? "yes" : "no")
        .cell("n/a (H target)")
        .cell(witness_chorded ? "reject" : "accept (misses H)")
        .cell_ok(demonstrates);
  }

  table.print(std::cout,
              "C1: §4 limitations — pruning/pairing is chord-oblivious, so witness filtering is "
              "not a tester for H-freeness or induced Ck-freeness");
  return claims.summarize();
}
