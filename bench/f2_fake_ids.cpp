/// \file f2_fake_ids.cpp
/// \brief §3.3 walkthrough — why Instruction 14's fake IDs are necessary.
///
/// On a bare k-cycle, a node at paper-round t knows only the t-1 IDs of the
/// one sequence it received: without the fake IDs, no (k-t)-subset of I
/// exists, 𝒳 is empty, C is empty, and the sequence is dropped — the paper
/// walks through exactly this on a C9 with IDs 1..9 and edge {1,9}. With
/// fake IDs the sequence survives and detection goes through.
///
/// The ablation shows the instruction is load-bearing for EVERY k >= 4, not
/// just long cycles: at paper-round 2 the candidate pool I consists of at
/// most the two seed IDs {u, v} no matter how dense the graph is, so
/// without fakes no (k-2)-element completion set exists and nothing is ever
/// forwarded past the first round. k = 3 has no pruning round and is
/// unaffected.
#include <iostream>

#include "core/cycle_detector.hpp"
#include "graph/generators.hpp"
#include "harness/claims.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  args.reject_unknown();

  harness::ClaimSet claims("F2 fake IDs (Instruction 14 ablation)");
  util::Table table({"instance", "k", "fake IDs on", "fake IDs off", "claim"});

  auto detect = [&](const graph::Graph& g, unsigned k, bool fake_ids) {
    const graph::IdAssignment ids = graph::IdAssignment::identity(g.num_vertices());
    core::EdgeDetectionOptions opt;
    opt.detect.k = k;
    opt.detect.fake_ids = fake_ids;
    // Edge {n-1, 0} is the paper's {9, 1} up to renaming.
    return core::detect_cycle_through_edge(g, ids, g.edge(0), opt).found;
  };

  // Bare cycles: detection must vanish without fake IDs for every k >= 4
  // (at paper-round 2 a node knows a single foreign ID — not enough to build
  // any completion set). k = 3 has no pruning round and is unaffected.
  for (const unsigned k : {3u, 4u, 5u, 7u, 9u, 11u}) {
    const graph::Graph g = graph::cycle(k);
    const bool with_fakes = detect(g, k, true);
    const bool without = detect(g, k, false);
    const bool expected_without = k == 3;  // no pruning rounds for k=3
    const bool holds = with_fakes && without == expected_without;
    claims.check("bare C" + std::to_string(k) + ": fakes on=detect, off=" +
                     (expected_without ? "detect" : "miss"),
                 holds);
    table.row()
        .cell("cycle C" + std::to_string(k))
        .cell(static_cast<std::uint64_t>(k))
        .cell(with_fakes ? "detect" : "miss")
        .cell(without ? "detect" : "miss")
        .cell_ok(holds);
  }

  // Even on the densest instance the round-2 pool is {u, v}: without fakes,
  // K9 misses its C4s too — Instruction 14 is universal, not a long-cycle
  // patch.
  {
    const graph::Graph g = graph::complete(9);
    const bool with_fakes = detect(g, 4, true);
    const bool without = detect(g, 4, false);
    const bool holds = with_fakes && !without;
    claims.check("K9 k=4: even dense graphs miss without fakes", holds);
    table.row()
        .cell("complete K9")
        .cell(4u)
        .cell(with_fakes ? "detect" : "miss")
        .cell(without ? "detect" : "miss")
        .cell_ok(holds);
  }

  table.print(std::cout, "F2: Instruction 14 ablation — C9 walkthrough of paper §3.3, generalized");
  return claims.summarize();
}
