/// \file m1_pruner_micro.cpp
/// \brief Micro-benchmark M1 — pruner throughput (google-benchmark).
///
/// The pruning step runs once per node per round; its cost is the tester's
/// compute bottleneck on dense inputs. Measures the representative
/// (hitting-set) pruner across (k, t, |R|) and the literal reference
/// implementation on the small inputs it can handle, plus the raw bounded
/// hitting-set query.
#include <benchmark/benchmark.h>

#include "core/pruning.hpp"
#include "core/representative_family.hpp"
#include "util/rng.hpp"

namespace {

using namespace decycle;
using core::IdSeq;

std::vector<IdSeq> make_candidates(std::uint64_t seed, unsigned t, std::size_t count,
                                   std::uint64_t universe) {
  util::Rng rng(seed);
  std::vector<IdSeq> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto ids = rng.sample_distinct(universe, t - 1);
    IdSeq s;
    for (const auto id : ids) s.push_back(id + 1);
    out.push_back(std::move(s));
  }
  core::canonicalize(out);
  return out;
}

void BM_RepresentativePruner(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const auto t = static_cast<unsigned>(state.range(1));
  const auto count = static_cast<std::size_t>(state.range(2));
  const auto candidates = make_candidates(42, t, count, 4 * count);
  core::PrunerConfig cfg;
  cfg.k = k;
  auto pruner = core::make_pruner(core::PruningMode::kRepresentative, cfg);
  for (auto _ : state) {
    auto result = pruner->select(candidates, t);
    benchmark::DoNotOptimize(result.accepted.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(candidates.size()));
}
BENCHMARK(BM_RepresentativePruner)
    ->Args({5, 2, 16})
    ->Args({5, 2, 256})
    ->Args({7, 3, 64})
    ->Args({7, 3, 512})
    ->Args({9, 4, 128})
    ->Args({9, 4, 1024})
    ->Args({11, 5, 256});

void BM_ReferencePruner(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const auto t = static_cast<unsigned>(state.range(1));
  const auto count = static_cast<std::size_t>(state.range(2));
  const auto candidates = make_candidates(43, t, count, 10);  // small universe: |X| stays sane
  core::PrunerConfig cfg;
  cfg.k = k;
  auto pruner = core::make_pruner(core::PruningMode::kReference, cfg);
  for (auto _ : state) {
    auto result = pruner->select(candidates, t);
    benchmark::DoNotOptimize(result.accepted.data());
  }
}
BENCHMARK(BM_ReferencePruner)->Args({5, 2, 16})->Args({6, 3, 32})->Args({7, 3, 32});

void BM_HittingSetQuery(benchmark::State& state) {
  const auto family_size = static_cast<std::size_t>(state.range(0));
  const auto budget = static_cast<unsigned>(state.range(1));
  const auto family = make_candidates(44, 4, family_size, 30);
  const IdSeq avoid{1, 2, 3};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::exists_bounded_hitting_set(family, avoid, budget));
  }
}
BENCHMARK(BM_HittingSetQuery)->Args({8, 3})->Args({64, 3})->Args({64, 5})->Args({512, 5});

void BM_Lemma3Bound(benchmark::State& state) {
  for (auto _ : state) {
    for (unsigned k = 3; k <= 16; ++k) {
      for (unsigned t = 2; t <= k / 2; ++t) benchmark::DoNotOptimize(core::lemma3_bound(k, t));
    }
  }
}
BENCHMARK(BM_Lemma3Bound);

}  // namespace

BENCHMARK_MAIN();
