/// \file e5_message_bounds.cpp
/// \brief Experiment T5 — Lemma 3: bundle sizes stay within (k-t+1)^(t-1).
///
/// The core of the paper: pruning caps the number of sequences a node
/// forwards at paper-round t by (k-t+1)^(t-1), independent of degree or of
/// how many cycles cross the node. We hammer the checker with the densest
/// small instances (complete bipartite, complete, layered packings) and
/// record the per-round maxima across all nodes; the naive
/// append-and-forward baseline on the same instances shows what the bound
/// is protecting against.
#include <iostream>

#include "core/cycle_detector.hpp"
#include "graph/far_generators.hpp"
#include "graph/generators.hpp"
#include "harness/claims.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  args.reject_unknown();

  harness::ClaimSet claims("E5 message bounds (Lemma 3)");
  util::Table table({"instance", "k", "round t", "pruned max |S|", "bound (k-t+1)^(t-1)",
                     "naive max |S|", "claim"});

  struct Instance {
    std::string name;
    graph::Graph g;
  };
  util::Rng rng(3);
  std::vector<Instance> instances;
  instances.push_back({"K(10,10)", graph::complete_bipartite(10, 10)});
  instances.push_back({"K14", graph::complete(14)});
  instances.push_back({"layered C5 s=11 g=5", graph::layered_instance(5, 11, 5, rng).graph});
  instances.push_back({"layered C7 s=11 g=4", graph::layered_instance(7, 11, 4, rng).graph});

  for (const auto& inst : instances) {
    const graph::IdAssignment ids = graph::IdAssignment::identity(inst.g.num_vertices());
    for (const unsigned k : {4u, 6u, 8u, 10u}) {
      core::EdgeDetectionOptions opt;
      opt.detect.k = k;
      const auto pruned = core::detect_cycle_through_edge(inst.g, ids, inst.g.edge(0), opt);

      core::EdgeDetectionOptions naive_opt;
      naive_opt.detect.k = k;
      naive_opt.detect.pruning = core::PruningMode::kNaive;
      naive_opt.detect.naive_cap = 200000;
      const auto naive = core::detect_cycle_through_edge(inst.g, ids, inst.g.edge(0), naive_opt);

      for (unsigned g_round = 1; g_round < pruned.max_bundle_by_round.size(); ++g_round) {
        const unsigned t = g_round + 1;  // paper round index
        if (t > k / 2) break;
        const std::uint64_t bound = core::lemma3_bound(k, t);
        const std::size_t measured = pruned.max_bundle_by_round[g_round];
        const std::size_t naive_measured =
            g_round < naive.max_bundle_by_round.size() ? naive.max_bundle_by_round[g_round] : 0;
        const bool holds = measured <= bound;
        claims.check("bundle bound " + inst.name + " k=" + std::to_string(k) +
                         " t=" + std::to_string(t),
                     holds);
        std::string naive_text = std::to_string(naive_measured);
        if (naive.overflow) naive_text += " (capped)";
        table.row()
            .cell(inst.name)
            .cell(static_cast<std::uint64_t>(k))
            .cell(static_cast<std::uint64_t>(t))
            .cell(static_cast<std::uint64_t>(measured))
            .cell(bound)
            .cell(naive_text)
            .cell_ok(holds);
      }
    }
  }

  table.print(std::cout, "T5: max sequences per message vs Lemma 3 bound (naive for contrast)");
  return claims.summarize();
}
