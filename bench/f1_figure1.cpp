/// \file f1_figure1.cpp
/// \brief Figure 1 — the C5 gadget where single-choice forwarding fails.
///
/// The paper's Figure 1: a C5 (u, x, z, y, v) through e = {u, v}, with x and
/// y adjacent to BOTH endpoints. Both x and y receive (u) and (v) in round
/// 1; if each forwards only one sequence and both happen to keep the u-side
/// (deterministic tie-breaking does exactly that), z receives two sequences
/// starting at u and detects nothing. Algorithm 1's pruning keeps both
/// sequences — because each still has a disjoint completion — and z rejects.
///
/// "Single choice" is the naive pruner with a family cap of 1, which keeps
/// the lexicographically first sequence, faithfully reproducing the failure
/// mode described under the figure. Scaled variants widen the gadget with
/// more parallel 2-paths.
#include <cstdio>
#include <iostream>

#include "core/cycle_detector.hpp"
#include "graph/graph.hpp"
#include "graph/subgraph.hpp"
#include "harness/claims.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

/// The Figure 1 gadget, optionally widened: u=0, v=1, z=2, then `width`
/// middle vertices each adjacent to u, v. Middle vertex x_i is also adjacent
/// to z, closing C5s (u, x_i, z, x_j, v) for i != j.
decycle::graph::Graph figure1_gadget(unsigned width) {
  decycle::graph::GraphBuilder b;
  b.add_edge(0, 1);  // e = {u, v}
  for (unsigned i = 0; i < width; ++i) {
    const auto x = static_cast<decycle::graph::Vertex>(3 + i);
    b.add_edge(0, x);
    b.add_edge(1, x);
    b.add_edge(x, 2);  // to z
  }
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace decycle;
  const util::Args args(argc, argv);
  args.reject_unknown();

  harness::ClaimSet claims("F1 Figure 1 (C5 gadget)");
  util::Table table({"gadget width", "strategy", "max |S|", "detected", "witness", "claim"});

  for (const unsigned width : {2u, 4u, 8u, 16u}) {
    const graph::Graph g = figure1_gadget(width);
    const graph::IdAssignment ids = graph::IdAssignment::identity(g.num_vertices());
    const bool truth = graph::has_cycle_through_edge(g, 5, 0, 1);

    struct Strategy {
      const char* name;
      core::PruningMode mode;
      std::size_t cap;
      bool expect_detect;
    };
    const Strategy strategies[] = {
        {"algorithm 1 (pruned)", core::PruningMode::kRepresentative, 0, true},
        {"single-choice forward", core::PruningMode::kNaive, 1, false},
        {"naive forward-all", core::PruningMode::kNaive, 1u << 18, true},
    };
    for (const auto& strat : strategies) {
      core::EdgeDetectionOptions opt;
      opt.detect.k = 5;
      opt.detect.pruning = strat.mode;
      if (strat.cap != 0) opt.detect.naive_cap = strat.cap;
      const auto result = core::detect_cycle_through_edge(g, ids, {0, 1}, opt);
      const bool as_expected = result.found == strat.expect_detect && truth;
      claims.check(std::string(strat.name) + " at width " + std::to_string(width) +
                       (strat.expect_detect ? " detects" : " misses"),
                   as_expected);
      std::string witness = "-";
      if (result.found) {
        witness.clear();
        for (const auto v : result.witness) {
          if (!witness.empty()) witness.push_back('-');
          witness.append(std::to_string(v));
        }
      }
      table.row()
          .cell(static_cast<std::uint64_t>(width))
          .cell(strat.name)
          .cell(static_cast<std::uint64_t>(result.max_bundle_sequences))
          .cell(result.found ? "yes" : "no")
          .cell(witness)
          .cell_ok(as_expected);
    }
  }

  table.print(std::cout,
              "F1: Figure 1 gadget — pruning keeps enough sequences, single choice does not");
  std::printf("(the C5 exists in every row; only the forwarding strategy differs)\n");
  return claims.summarize();
}
