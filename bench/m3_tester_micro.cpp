/// \file m3_tester_micro.cpp
/// \brief Micro-benchmark M3 — end-to-end tester throughput
/// (google-benchmark).
///
/// Wall-clock cost of full tester executions as the network grows (sparse
/// random graphs, fixed repetitions), plus repetition-count scaling at fixed
/// n and the cost of a traced run (observability overhead).
#include <benchmark/benchmark.h>

#include "core/cycle_detector.hpp"
#include "core/tester.hpp"
#include "core/trace.hpp"
#include "graph/generators.hpp"

namespace {

using namespace decycle;

void BM_TesterSparseGrowth(benchmark::State& state) {
  const auto n = static_cast<graph::Vertex>(state.range(0));
  util::Rng rng(5);
  const graph::Graph g = graph::random_connected(n, n + n / 4, rng);
  const graph::IdAssignment ids = graph::IdAssignment::identity(n);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    core::TesterOptions opt;
    opt.k = 5;
    opt.repetitions = 4;
    opt.seed = ++seed;
    benchmark::DoNotOptimize(core::test_ck_freeness(g, ids, opt).accepted);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
  state.counters["n"] = static_cast<double>(n);
}
BENCHMARK(BM_TesterSparseGrowth)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_TesterRepetitionScaling(benchmark::State& state) {
  const auto reps = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  const graph::Graph g = graph::random_connected(512, 640, rng);
  const graph::IdAssignment ids = graph::IdAssignment::identity(512);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    core::TesterOptions opt;
    opt.k = 5;
    opt.repetitions = reps;
    opt.seed = ++seed;
    benchmark::DoNotOptimize(core::test_ck_freeness(g, ids, opt).accepted);
  }
  state.counters["reps"] = static_cast<double>(reps);
}
BENCHMARK(BM_TesterRepetitionScaling)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_TesterKScaling(benchmark::State& state) {
  const auto k = static_cast<unsigned>(state.range(0));
  const graph::Graph g = graph::complete_bipartite(12, 12);
  const graph::IdAssignment ids = graph::IdAssignment::identity(g.num_vertices());
  std::uint64_t seed = 0;
  for (auto _ : state) {
    core::TesterOptions opt;
    opt.k = k;
    opt.repetitions = 4;
    opt.seed = ++seed;
    benchmark::DoNotOptimize(core::test_ck_freeness(g, ids, opt).accepted);
  }
  state.counters["k"] = static_cast<double>(k);
}
BENCHMARK(BM_TesterKScaling)->Arg(4)->Arg(6)->Arg(8)->Arg(10);

void BM_TracedDetection(benchmark::State& state) {
  // Observability overhead: the same check with and without a sink.
  const bool traced = state.range(0) != 0;
  const graph::Graph g = graph::complete_bipartite(10, 10);
  const graph::IdAssignment ids = graph::IdAssignment::identity(g.num_vertices());
  for (auto _ : state) {
    core::TraceSink sink;
    core::EdgeDetectionOptions opt;
    opt.detect.k = 8;
    if (traced) opt.detect.trace = &sink;
    benchmark::DoNotOptimize(core::detect_cycle_through_edge(g, ids, g.edge(0), opt).found);
  }
  state.counters["traced"] = traced ? 1 : 0;
}
BENCHMARK(BM_TracedDetection)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
